"""Stage abstractions for the validation pipeline.

A :class:`Stage` is one worker pool's worth of behaviour: a name, a
worker count, optional per-worker state (a compiler, an executor, a
judge — anything not thread-safe to share), and a ``process`` method
that turns one item into a :class:`StageOutcome` carrying the routing
decision.  The :class:`~repro.pipeline.scheduler.StageScheduler` owns
everything else (queues, threads, shutdown, stats).

The three concrete stages reproduce the paper's §III-C pipeline —
compile → execute → judge — as declarative routing rules instead of
bespoke thread loops, and each optionally fronts its workhorse with
the content-addressed caches from :mod:`repro.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.compiler.driver import Compiler
from repro.corpus.generator import TestFile
from repro.judge.llmj import AgentLLMJ
from repro.llm.model import DeepSeekCoderSim
from repro.obs import trace
from repro.runtime.executor import ExecutionResult, Executor


@dataclass(frozen=True)
class StageOutcome:
    """What one ``process`` call decided.

    ``ok=None`` means "record no pass/fail statistic" (rare; used by
    pure routing stages).  ``simulated_seconds=None`` defaults the
    simulated cost to the measured busy time — right for CPU-bound
    stages; the judge overrides it with the LLM service-time model.
    ``skip_stats`` names stages whose statistics should record a skip
    (early-exit accounting).
    """

    payload: Any
    ok: bool | None = None
    done: bool = False
    next_stage: str | None = None
    skip_stats: tuple[str, ...] = ()
    simulated_seconds: float | None = None


class Stage:
    """One named worker pool in a scheduler chain."""

    name: str = "stage"
    workers: int = 1

    def make_worker_state(self) -> Any:
        """Build per-thread state (called once per worker thread)."""
        return None

    def process(self, payload: Any, state: Any) -> StageOutcome:
        raise NotImplementedError


# ----------------------------------------------------------------------
# the validation pipeline's three stages
# ----------------------------------------------------------------------


@dataclass
class PipelineItem:
    """One file's in-flight state between pipeline stages."""

    record: Any  # PipelineRecord (avoid importing engine: it imports us)
    compiled: Any = None  # CompileResult while travelling compile -> execute


class CompileStage(Stage):
    """Compile one file; route per early-exit/record-all policy.

    * success         → execute stage;
    * failure + early-exit  → finished (execute and judge record skips);
    * failure + record-all  → straight to the judge, which sees the
      failed compile through its prompt.
    """

    name = "compile"

    def __init__(self, config, environment=None, cache=None):
        self.config = config
        self.environment = environment
        self.cache = cache
        self.workers = config.compile_workers

    def make_worker_state(self):
        compiler = Compiler(
            model=self.config.flavor,
            openmp_max_version=self.config.openmp_max_version,
        )
        if self.cache is not None:
            from repro.cache.wrappers import CachingCompiler

            return CachingCompiler(compiler, self.cache.compile)
        return compiler

    def process(self, payload: TestFile, compiler) -> StageOutcome:
        from repro.pipeline.engine import PipelineRecord

        test = payload
        compiled = compiler.compile(test.source, test.name)
        if self.environment is not None:
            compiled = self.environment.apply(test, compiled)
        record = PipelineRecord(
            test=test,
            compile_rc=compiled.returncode,
            compile_stderr=compiled.stderr,
            diagnostic_codes=tuple(compiled.diagnostic_codes),
        )
        if compiled.ok:
            return StageOutcome(PipelineItem(record, compiled), ok=True)
        if self.config.early_exit:
            return StageOutcome(
                PipelineItem(record), ok=False, done=True,
                skip_stats=("execute", "judge"),
            )
        return StageOutcome(PipelineItem(record), ok=False, next_stage="judge")


class ExecuteStage(Stage):
    """Run one compiled unit; route per early-exit policy."""

    name = "execute"

    def __init__(self, config, cache=None):
        self.config = config
        self.cache = cache
        self.workers = config.execute_workers

    def make_worker_state(self):
        executor = Executor(
            step_limit=self.config.step_limit,
            backend=getattr(self.config, "execution_backend", "closure"),
        )
        if self.cache is not None:
            from repro.cache.wrappers import CachingExecutor

            return CachingExecutor(executor, self.cache.execute)
        return executor

    def process(self, payload: PipelineItem, executor) -> StageOutcome:
        record = payload.record
        trace.annotate(
            backend=getattr(self.config, "execution_backend", "closure")
        )
        executed: ExecutionResult = executor.run(payload.compiled)
        record.run_rc = executed.returncode
        record.run_stderr = executed.stderr
        record.run_stdout = executed.stdout
        payload.compiled = None  # the AST is no longer needed downstream
        if executed.ok or not self.config.early_exit:
            return StageOutcome(payload, ok=executed.ok)
        return StageOutcome(payload, ok=False, done=True, skip_stats=("judge",))


class JudgeStage(Stage):
    """LLM-judge one record's evidence; always terminal."""

    name = "judge"

    def __init__(self, config, model: DeepSeekCoderSim, cache=None):
        self.config = config
        self.model = model
        self.cache = cache
        self.workers = config.judge_workers

    def make_worker_state(self):
        judge = AgentLLMJ(
            self.model, self.config.flavor, kind=self.config.judge_kind,
            execution_backend=getattr(self.config, "execution_backend", "closure"),
        )
        if self.cache is not None:
            from repro.cache.wrappers import CachingAgentJudge

            return CachingAgentJudge(judge, self.cache.judge)
        return judge

    def process(self, payload: PipelineItem, judge) -> StageOutcome:
        record = payload.record
        judged = judge.judge(record.test, record.tool_report())
        record.judge_result = judged
        return StageOutcome(
            payload,
            ok=judged.says_valid,
            done=True,
            simulated_seconds=judged.simulated_seconds,
        )


@dataclass
class JudgeTask:
    """One (index, test, report) unit for a standalone judge sweep."""

    index: int
    test: TestFile
    report: Any  # ToolReport
    result: Any = None  # JudgeResult once processed


class BatchJudgeStage(Stage):
    """A standalone judge pool over prepared :class:`JudgeTask` items.

    Used by the experiment runner to batch the retroactive LLMJ-2 pass
    through the scheduler instead of a serial loop; ``kind`` and
    ``workers`` are free knobs since there is no pipeline config here.
    """

    name = "judge"

    def __init__(
        self,
        model: DeepSeekCoderSim,
        flavor: str,
        kind: str = "indirect",
        workers: int = 1,
        cache=None,
    ):
        self.model = model
        self.flavor = flavor
        self.kind = kind
        self.workers = workers
        self.cache = cache

    def make_worker_state(self):
        judge = AgentLLMJ(self.model, self.flavor, kind=self.kind)
        if self.cache is not None:
            from repro.cache.wrappers import CachingAgentJudge

            return CachingAgentJudge(judge, self.cache.judge)
        return judge

    def process(self, payload: JudgeTask, judge) -> StageOutcome:
        payload.result = judge.judge(payload.test, payload.report)
        return StageOutcome(
            payload,
            ok=payload.result.says_valid,
            done=True,
            simulated_seconds=payload.result.simulated_seconds,
        )
