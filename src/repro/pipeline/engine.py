"""The staged, parallel validation pipeline.

Three worker pools connected by bounded queues (classic
producer/consumer with sentinel shutdown):

.. code-block:: text

    files -> [compile xN] -> [execute xN] -> [judge xN] -> records

Early-exit mode drops failing files out of the flow immediately with
an ``invalid`` verdict; record-all mode carries them through so the
Part Two experiments can score judge-only and pipeline verdicts from
one pass.  Bounded queues give back-pressure; per-stage worker counts
are independent knobs (the paper's §III-C: compile and execute pools,
an LLM stage sized to GPU availability).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.compiler.driver import Compiler
from repro.corpus.generator import TestFile
from repro.judge.agent import ToolReport
from repro.judge.llmj import AgentLLMJ, JudgeResult
from repro.llm.model import DeepSeekCoderSim
from repro.pipeline.stats import PipelineStats
from repro.runtime.executor import ExecutionResult, Executor

_SENTINEL = object()


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline tuning knobs."""

    flavor: str = "acc"
    judge_kind: str = "direct"  # 'direct' (LLMJ 1) | 'indirect' (LLMJ 2)
    early_exit: bool = True
    compile_workers: int = 2
    execute_workers: int = 2
    judge_workers: int = 1
    queue_capacity: int = 64
    openmp_max_version: float = 4.5
    step_limit: int = 3_000_000
    model_seed: int = 20240822

    def __post_init__(self) -> None:
        if self.flavor not in ("acc", "omp"):
            raise ValueError(f"flavor must be 'acc' or 'omp', got {self.flavor!r}")
        if self.judge_kind not in ("direct", "indirect"):
            raise ValueError(f"judge_kind must be 'direct' or 'indirect', got {self.judge_kind!r}")
        for knob in ("compile_workers", "execute_workers", "judge_workers"):
            if getattr(self, knob) < 1:
                raise ValueError(f"{knob} must be >= 1")


@dataclass
class PipelineRecord:
    """Everything the pipeline learned about one file."""

    test: TestFile
    compile_rc: int = -1
    compile_stderr: str = ""
    diagnostic_codes: tuple[str, ...] = ()
    run_rc: int | None = None
    run_stderr: str | None = None
    run_stdout: str | None = None
    judge_result: JudgeResult | None = None
    judge_skipped: bool = False

    @property
    def compiled(self) -> bool:
        return self.compile_rc == 0

    @property
    def ran_clean(self) -> bool:
        return self.run_rc == 0

    @property
    def pipeline_says_valid(self) -> bool:
        """The pipeline verdict: every stage must pass."""
        if not self.compiled or self.run_rc not in (0,):
            return False
        if self.judge_result is None:
            return False
        return self.judge_result.says_valid

    @property
    def judge_says_valid(self) -> bool | None:
        """The judge-only verdict (None if the judge never ran)."""
        if self.judge_result is None:
            return None
        return self.judge_result.says_valid

    def tool_report(self) -> ToolReport:
        return ToolReport(
            compile_rc=self.compile_rc,
            compile_stderr=self.compile_stderr,
            compile_stdout="",
            run_rc=self.run_rc,
            run_stderr=self.run_stderr,
            run_stdout=self.run_stdout,
            diagnostic_codes=self.diagnostic_codes,
        )


@dataclass
class PipelineResult:
    records: list[PipelineRecord] = field(default_factory=list)
    stats: PipelineStats = field(default_factory=PipelineStats)

    def record_for(self, name: str) -> PipelineRecord | None:
        for record in self.records:
            if record.test.name == name:
                return record
        return None


class ValidationPipeline:
    """Run files through compile → execute → judge with thread pools.

    ``environment`` optionally post-processes compile results (see
    :class:`repro.experiments.environment.EnvironmentModel`).
    """

    def __init__(
        self,
        config: PipelineConfig,
        model: DeepSeekCoderSim | None = None,
        environment=None,
    ):
        self.config = config
        self.model = model or DeepSeekCoderSim(seed=config.model_seed)
        self.environment = environment

    # ------------------------------------------------------------------

    def run(self, files: list[TestFile]) -> PipelineResult:
        cfg = self.config
        result = PipelineResult()
        result.stats.files_total = len(files)
        results_lock = threading.Lock()

        compile_q: queue.Queue = queue.Queue(maxsize=cfg.queue_capacity)
        execute_q: queue.Queue = queue.Queue(maxsize=cfg.queue_capacity)
        judge_q: queue.Queue = queue.Queue(maxsize=cfg.queue_capacity)

        def finish(record: PipelineRecord) -> None:
            with results_lock:
                result.records.append(record)

        # ------------------------------------------------ compile stage
        def compile_worker() -> None:
            compiler = Compiler(model=cfg.flavor, openmp_max_version=cfg.openmp_max_version)
            while True:
                item = compile_q.get()
                if item is _SENTINEL:
                    compile_q.task_done()
                    return
                test: TestFile = item
                t0 = time.perf_counter()
                compiled = compiler.compile(test.source, test.name)
                if self.environment is not None:
                    compiled = self.environment.apply(test, compiled)
                busy = time.perf_counter() - t0
                record = PipelineRecord(
                    test=test,
                    compile_rc=compiled.returncode,
                    compile_stderr=compiled.stderr,
                    diagnostic_codes=tuple(compiled.diagnostic_codes),
                )
                result.stats.compile.record(compiled.ok, busy, busy)
                if compiled.ok:
                    execute_q.put((record, compiled))
                elif cfg.early_exit:
                    result.stats.execute.record_skip()
                    result.stats.judge.record_skip()
                    finish(record)
                else:
                    # record-all: judge sees the failed compile via its prompt
                    judge_q.put(record)
                compile_q.task_done()

        # ------------------------------------------------ execute stage
        def execute_worker() -> None:
            executor = Executor(step_limit=cfg.step_limit)
            while True:
                item = execute_q.get()
                if item is _SENTINEL:
                    execute_q.task_done()
                    return
                record, compiled = item
                t0 = time.perf_counter()
                executed: ExecutionResult = executor.run(compiled)
                busy = time.perf_counter() - t0
                record.run_rc = executed.returncode
                record.run_stderr = executed.stderr
                record.run_stdout = executed.stdout
                result.stats.execute.record(executed.ok, busy, busy)
                if executed.ok or not cfg.early_exit:
                    judge_q.put(record)
                else:
                    result.stats.judge.record_skip()
                    finish(record)
                execute_q.task_done()

        # ------------------------------------------------ judge stage
        def judge_worker() -> None:
            judge = AgentLLMJ(self.model, cfg.flavor, kind=cfg.judge_kind)
            while True:
                item = judge_q.get()
                if item is _SENTINEL:
                    judge_q.task_done()
                    return
                record: PipelineRecord = item
                t0 = time.perf_counter()
                judged = judge.judge(record.test, record.tool_report())
                busy = time.perf_counter() - t0
                record.judge_result = judged
                result.stats.judge.record(
                    judged.says_valid, busy, judged.simulated_seconds
                )
                finish(record)
                judge_q.task_done()

        started = time.perf_counter()
        compile_pool = _spawn(compile_worker, cfg.compile_workers)
        execute_pool = _spawn(execute_worker, cfg.execute_workers)
        judge_pool = _spawn(judge_worker, cfg.judge_workers)

        for test in files:
            compile_q.put(test)
        _drain(compile_q, compile_pool)
        _drain(execute_q, execute_pool)
        _drain(judge_q, judge_pool)
        result.stats.wall_seconds = time.perf_counter() - started

        # deterministic output order regardless of thread interleaving
        order = {test.name: i for i, test in enumerate(files)}
        result.records.sort(key=lambda r: order.get(r.test.name, 1 << 30))
        return result


def _spawn(target, count: int) -> list[threading.Thread]:
    threads = [threading.Thread(target=target, daemon=True) for _ in range(count)]
    for thread in threads:
        thread.start()
    return threads


def _drain(q: queue.Queue, pool: list[threading.Thread]) -> None:
    """Wait for a stage to finish, then shut its workers down."""
    q.join()
    for _ in pool:
        q.put(_SENTINEL)
    for thread in pool:
        thread.join()
