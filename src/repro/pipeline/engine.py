"""The staged, parallel validation pipeline.

Three declarative stages connected by the generic
:class:`~repro.pipeline.scheduler.StageScheduler`:

.. code-block:: text

    files -> [compile xN] -> [execute xN] -> [judge xN] -> records

Early-exit mode drops failing files out of the flow immediately with
an ``invalid`` verdict; record-all mode carries them through so the
Part Two experiments can score judge-only and pipeline verdicts from
one pass.  Bounded queues give back-pressure; per-stage worker counts
are independent knobs (the paper's §III-C: compile and execute pools,
an LLM stage sized to GPU availability).

The scheduler owns threading, shutdown and stats; the stages
(:mod:`repro.pipeline.stages`) own per-file policy; and an optional
:class:`~repro.cache.bundle.PipelineCache` fronts the compile and
judge workhorses with content-addressed result reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.generator import TestFile
from repro.judge.agent import ToolReport
from repro.judge.llmj import JudgeResult
from repro.llm.model import DeepSeekCoderSim
from repro.pipeline.scheduler import StageScheduler
from repro.pipeline.stages import CompileStage, ExecuteStage, JudgeStage
from repro.pipeline.stats import PipelineStats


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline tuning knobs."""

    flavor: str = "acc"
    judge_kind: str = "direct"  # 'direct' (LLMJ 1) | 'indirect' (LLMJ 2)
    early_exit: bool = True
    compile_workers: int = 2
    execute_workers: int = 2
    judge_workers: int = 1
    queue_capacity: int = 64
    openmp_max_version: float = 4.5
    step_limit: int = 3_000_000
    model_seed: int = 20240822
    #: interpreter evaluator: any name in
    #: :data:`repro.runtime.interpreter.EXECUTION_BACKENDS`
    execution_backend: str = "closure"

    def __post_init__(self) -> None:
        if self.flavor not in ("acc", "omp"):
            raise ValueError(f"flavor must be 'acc' or 'omp', got {self.flavor!r}")
        if self.judge_kind not in ("direct", "indirect"):
            raise ValueError(f"judge_kind must be 'direct' or 'indirect', got {self.judge_kind!r}")
        from repro.runtime.interpreter import EXECUTION_BACKENDS

        if self.execution_backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"execution_backend must be one of {EXECUTION_BACKENDS},"
                f" got {self.execution_backend!r}"
            )
        for knob in ("compile_workers", "execute_workers", "judge_workers"):
            if getattr(self, knob) < 1:
                raise ValueError(f"{knob} must be >= 1")


@dataclass
class PipelineRecord:
    """Everything the pipeline learned about one file."""

    test: TestFile
    compile_rc: int = -1
    compile_stderr: str = ""
    diagnostic_codes: tuple[str, ...] = ()
    run_rc: int | None = None
    run_stderr: str | None = None
    run_stdout: str | None = None
    judge_result: JudgeResult | None = None
    judge_skipped: bool = False

    @property
    def compiled(self) -> bool:
        return self.compile_rc == 0

    @property
    def ran_clean(self) -> bool:
        return self.run_rc == 0

    @property
    def pipeline_says_valid(self) -> bool:
        """The pipeline verdict: every stage must pass."""
        if not self.compiled or self.run_rc not in (0,):
            return False
        if self.judge_result is None:
            return False
        return self.judge_result.says_valid

    @property
    def judge_says_valid(self) -> bool | None:
        """The judge-only verdict (None if the judge never ran)."""
        if self.judge_result is None:
            return None
        return self.judge_result.says_valid

    def tool_report(self) -> ToolReport:
        return ToolReport(
            compile_rc=self.compile_rc,
            compile_stderr=self.compile_stderr,
            compile_stdout="",
            run_rc=self.run_rc,
            run_stderr=self.run_stderr,
            run_stdout=self.run_stdout,
            diagnostic_codes=self.diagnostic_codes,
        )


@dataclass
class PipelineResult:
    records: list[PipelineRecord] = field(default_factory=list)
    stats: PipelineStats = field(default_factory=PipelineStats)
    _index: dict[str, PipelineRecord] | None = field(
        default=None, repr=False, compare=False
    )

    def record_for(self, name: str) -> PipelineRecord | None:
        """O(1) lookup by test name (index built lazily, kept fresh)."""
        if self._index is None or len(self._index) != len(self.records):
            self._index = {record.test.name: record for record in self.records}
        return self._index.get(name)


class ValidationPipeline:
    """Run files through compile → execute → judge with thread pools.

    ``environment`` optionally post-processes compile results (see
    :class:`repro.experiments.environment.EnvironmentModel`); ``cache``
    optionally fronts the compile, execute and judge workhorses with
    the content-addressed :class:`~repro.cache.bundle.PipelineCache`.
    """

    def __init__(
        self,
        config: PipelineConfig,
        model: DeepSeekCoderSim | None = None,
        environment=None,
        cache=None,
    ):
        self.config = config
        self.model = model or DeepSeekCoderSim(seed=config.model_seed)
        self.environment = environment
        self.cache = cache

    def stages(self) -> list:
        """The declarative stage chain (override point for new kinds)."""
        return [
            CompileStage(self.config, environment=self.environment, cache=self.cache),
            ExecuteStage(self.config, cache=self.cache),
            JudgeStage(self.config, self.model, cache=self.cache),
        ]

    # ------------------------------------------------------------------

    def run(self, files: list[TestFile]) -> PipelineResult:
        result = PipelineResult()
        result.stats.files_total = len(files)

        stages = self.stages()
        scheduler = StageScheduler(
            stages,
            queue_capacity=self.config.queue_capacity,
            stats={stage.name: result.stats.for_stage(stage.name) for stage in stages},
        )
        run = scheduler.run(files)
        run.raise_first("validation pipeline")
        result.stats.wall_seconds = run.wall_seconds

        # deterministic output order regardless of thread interleaving
        order = {test.name: i for i, test in enumerate(files)}
        records = [item.record for item in run.finished]
        records.sort(key=lambda r: order.get(r.test.name, 1 << 30))
        result.records = records
        return result
