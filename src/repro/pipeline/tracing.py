"""Structured event tracing for pipeline runs (observability extension).

A :class:`PipelineTracer` collects timestamped stage events
(enqueue/start/finish per file per stage) into a thread-safe buffer.
From the trace you can reconstruct per-stage latency distributions,
queue wait times, and a text Gantt view — the profiling workflow the
hpc-parallel guides prescribe ("no optimization without measuring").

Tracing is opt-in: attach a tracer to a :class:`ValidationPipeline` by
wrapping stage work via :meth:`span`, or use
:func:`run_traced_pipeline` which wires everything up.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One stage-span of one file."""

    file: str
    stage: str  # 'compile' | 'execute' | 'judge'
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PipelineTracer:
    """Thread-safe collector of stage spans."""

    events: list[TraceEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _epoch: float = field(default_factory=time.perf_counter)

    @contextmanager
    def span(self, file: str, stage: str):
        start = time.perf_counter() - self._epoch
        try:
            yield
        finally:
            end = time.perf_counter() - self._epoch
            with self._lock:
                self.events.append(TraceEvent(file, stage, start, end))

    # ------------------------------------------------------------------

    def by_stage(self) -> dict[str, list[TraceEvent]]:
        out: dict[str, list[TraceEvent]] = defaultdict(list)
        with self._lock:
            for event in self.events:
                out[event.stage].append(event)
        return dict(out)

    def stage_latencies(self) -> dict[str, dict[str, float]]:
        """min/mean/max span duration per stage."""
        stats: dict[str, dict[str, float]] = {}
        for stage, events in self.by_stage().items():
            durations = sorted(e.duration for e in events)
            if not durations:
                continue
            stats[stage] = {
                "count": float(len(durations)),
                "min": durations[0],
                "mean": sum(durations) / len(durations),
                "p50": durations[len(durations) // 2],
                "max": durations[-1],
            }
        return stats

    def file_timeline(self, file: str) -> list[TraceEvent]:
        with self._lock:
            return sorted(
                (e for e in self.events if e.file == file), key=lambda e: e.start
            )

    def stage_gaps(self, file: str, from_stage: str, to_stage: str) -> list[float]:
        """Queue waits between two stages for one file, *all* pairs.

        Retried or duplicated spans produce several events per stage;
        the k-th ``from_stage`` event pairs with the k-th ``to_stage``
        event in chronological order, so every attempt's wait is
        reported instead of only the last one's.
        """
        timeline = self.file_timeline(file)
        froms = [e for e in timeline if e.stage == from_stage]
        tos = [e for e in timeline if e.stage == to_stage]
        return [
            max(0.0, to.start - frm.end) for frm, to in zip(froms, tos)
        ]

    def stage_gap(self, file: str, from_stage: str, to_stage: str) -> float | None:
        """Queue wait between two stages for one file (None if absent).

        With retries, the first attempt's gap; use :meth:`stage_gaps`
        for every pair.  (This used to collapse the timeline into a
        per-stage dict, silently keeping only the *last* event of each
        stage — duplicate spans made the reported gap arbitrary.)
        """
        gaps = self.stage_gaps(file, from_stage, to_stage)
        return gaps[0] if gaps else None

    def render_gantt(self, width: int = 60, max_files: int = 20) -> str:
        """Text Gantt chart: one row per file, stage letters over time."""
        with self._lock:
            events = list(self.events)
        if not events:
            return "(no trace events)"
        t_end = max(e.end for e in events)
        scale = width / t_end if t_end > 0 else 1.0
        rows: dict[str, list[str]] = {}
        order: list[str] = []
        letters = {"compile": "C", "execute": "X", "judge": "J"}
        for event in sorted(events, key=lambda e: e.start):
            if event.file not in rows:
                if len(order) >= max_files:
                    continue
                rows[event.file] = [" "] * width
                order.append(event.file)
            row = rows[event.file]
            lo = min(width - 1, int(event.start * scale))
            hi = min(width - 1, max(lo, int(event.end * scale)))
            for i in range(lo, hi + 1):
                row[i] = letters.get(event.stage, "?")
        name_width = max(len(name) for name in order)
        lines = [
            f"{name.ljust(name_width)} |{''.join(rows[name])}|" for name in order
        ]
        lines.append(f"{'':{name_width}}  0{'.' * (width - 8)}{t_end * 1000:.0f}ms")
        lines.append("C=compile X=execute J=judge")
        return "\n".join(lines)


def run_traced_pipeline(pipeline, files):
    """Run a ValidationPipeline while tracing stage spans.

    This used to re-implement the stage bodies and run them serially —
    a second copy of the pipeline that drifted from the real one (no
    cache, no early-exit parity, no concurrency, so the "trace" showed
    a schedule the engine never executes).  It is now a thin shim: the
    *actual* ``pipeline.run`` executes under an ambient
    :class:`repro.obs.trace.Tracer`, and the engine's own
    ``stage.<name>`` spans (emitted by the scheduler worker loop) are
    projected down to :class:`TraceEvent` rows.  Verdicts are therefore
    byte-identical to an untraced run, and the timeline reflects the
    real concurrent schedule.
    """
    from repro.obs import trace as obs_trace

    collector = obs_trace.Tracer()
    with obs_trace.installed(collector):
        result = pipeline.run(files)

    tracer = PipelineTracer()
    stage_spans = [
        s for s in collector.spans if s.name.startswith("stage.") and s.end
    ]
    if stage_spans:
        epoch = min(s.start for s in stage_spans)
        for span in stage_spans:
            tracer.events.append(
                TraceEvent(
                    file=str(span.attrs.get("file", "?")),
                    stage=span.name[len("stage."):],
                    start=span.start - epoch,
                    end=span.end - epoch,
                )
            )
        tracer.events.sort(key=lambda e: e.start)
    return result, tracer
