"""Structured event tracing for pipeline runs (observability extension).

A :class:`PipelineTracer` collects timestamped stage events
(enqueue/start/finish per file per stage) into a thread-safe buffer.
From the trace you can reconstruct per-stage latency distributions,
queue wait times, and a text Gantt view — the profiling workflow the
hpc-parallel guides prescribe ("no optimization without measuring").

Tracing is opt-in: attach a tracer to a :class:`ValidationPipeline` by
wrapping stage work via :meth:`span`, or use
:func:`run_traced_pipeline` which wires everything up.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One stage-span of one file."""

    file: str
    stage: str  # 'compile' | 'execute' | 'judge'
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PipelineTracer:
    """Thread-safe collector of stage spans."""

    events: list[TraceEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _epoch: float = field(default_factory=time.perf_counter)

    @contextmanager
    def span(self, file: str, stage: str):
        start = time.perf_counter() - self._epoch
        try:
            yield
        finally:
            end = time.perf_counter() - self._epoch
            with self._lock:
                self.events.append(TraceEvent(file, stage, start, end))

    # ------------------------------------------------------------------

    def by_stage(self) -> dict[str, list[TraceEvent]]:
        out: dict[str, list[TraceEvent]] = defaultdict(list)
        with self._lock:
            for event in self.events:
                out[event.stage].append(event)
        return dict(out)

    def stage_latencies(self) -> dict[str, dict[str, float]]:
        """min/mean/max span duration per stage."""
        stats: dict[str, dict[str, float]] = {}
        for stage, events in self.by_stage().items():
            durations = sorted(e.duration for e in events)
            if not durations:
                continue
            stats[stage] = {
                "count": float(len(durations)),
                "min": durations[0],
                "mean": sum(durations) / len(durations),
                "p50": durations[len(durations) // 2],
                "max": durations[-1],
            }
        return stats

    def file_timeline(self, file: str) -> list[TraceEvent]:
        with self._lock:
            return sorted(
                (e for e in self.events if e.file == file), key=lambda e: e.start
            )

    def stage_gap(self, file: str, from_stage: str, to_stage: str) -> float | None:
        """Queue wait between two stages for one file (None if absent)."""
        timeline = {e.stage: e for e in self.file_timeline(file)}
        if from_stage not in timeline or to_stage not in timeline:
            return None
        return max(0.0, timeline[to_stage].start - timeline[from_stage].end)

    def render_gantt(self, width: int = 60, max_files: int = 20) -> str:
        """Text Gantt chart: one row per file, stage letters over time."""
        with self._lock:
            events = list(self.events)
        if not events:
            return "(no trace events)"
        t_end = max(e.end for e in events)
        scale = width / t_end if t_end > 0 else 1.0
        rows: dict[str, list[str]] = {}
        order: list[str] = []
        letters = {"compile": "C", "execute": "X", "judge": "J"}
        for event in sorted(events, key=lambda e: e.start):
            if event.file not in rows:
                if len(order) >= max_files:
                    continue
                rows[event.file] = [" "] * width
                order.append(event.file)
            row = rows[event.file]
            lo = min(width - 1, int(event.start * scale))
            hi = min(width - 1, max(lo, int(event.end * scale)))
            for i in range(lo, hi + 1):
                row[i] = letters.get(event.stage, "?")
        name_width = max(len(name) for name in order)
        lines = [
            f"{name.ljust(name_width)} |{''.join(rows[name])}|" for name in order
        ]
        lines.append(f"{'':{name_width}}  0{'.' * (width - 8)}{t_end * 1000:.0f}ms")
        lines.append("C=compile X=execute J=judge")
        return "\n".join(lines)


def run_traced_pipeline(pipeline, files):
    """Run a ValidationPipeline while tracing stage spans.

    Works by wrapping the pipeline's worker bodies via monkey-friendly
    composition: we re-run the same stages sequentially with spans when
    the pipeline has one worker per stage, or attach the tracer to the
    stats path otherwise.  For precise concurrent traces, instrument at
    the stage level: the engine's per-stage busy timing is already in
    :class:`~repro.pipeline.stats.PipelineStats`; the tracer adds
    per-file resolution.
    """
    from repro.compiler.driver import Compiler
    from repro.judge.llmj import AgentLLMJ
    from repro.runtime.executor import Executor

    tracer = PipelineTracer()
    cfg = pipeline.config
    compiler = Compiler(model=cfg.flavor, openmp_max_version=cfg.openmp_max_version)
    executor = Executor(
        step_limit=cfg.step_limit,
        backend=getattr(cfg, "execution_backend", "closure"),
    )
    judge = AgentLLMJ(
        pipeline.model, cfg.flavor, kind=cfg.judge_kind,
        execution_backend=getattr(cfg, "execution_backend", "closure"),
    )

    from repro.pipeline.engine import PipelineRecord, PipelineResult

    result = PipelineResult()
    result.stats.files_total = len(files)
    t0 = time.perf_counter()
    for test in files:
        with tracer.span(test.name, "compile"):
            compiled = compiler.compile(test.source, test.name)
            if pipeline.environment is not None:
                compiled = pipeline.environment.apply(test, compiled)
        record = PipelineRecord(
            test=test,
            compile_rc=compiled.returncode,
            compile_stderr=compiled.stderr,
            diagnostic_codes=tuple(compiled.diagnostic_codes),
        )
        if compiled.ok:
            with tracer.span(test.name, "execute"):
                executed = executor.run(compiled)
            record.run_rc = executed.returncode
            record.run_stderr = executed.stderr
            record.run_stdout = executed.stdout
        if not cfg.early_exit or (record.compiled and record.ran_clean):
            with tracer.span(test.name, "judge"):
                record.judge_result = judge.judge(test, record.tool_report())
        result.records.append(record)
    result.stats.wall_seconds = time.perf_counter() - t0
    return result, tracer
