"""The validation pipeline (paper §III-C, Figure 2).

Files flow through three stages — **compile → execute → LLM-judge** —
with bounded queues between stages and a worker pool per stage.  A file
failing an early stage has demonstrated invalidity, so in early-exit
mode it skips the expensive judge stage; record-all mode (used by the
paper's Part Two experiments) pushes every file through every stage so
both the pipeline verdict and the judge-only verdict can be computed
retroactively.
"""

from repro.pipeline.engine import (
    PipelineConfig,
    PipelineRecord,
    PipelineResult,
    ValidationPipeline,
)
from repro.pipeline.scheduler import (
    SchedulerResult,
    StageError,
    StageScheduler,
    run_stage,
)
from repro.pipeline.stages import (
    BatchJudgeStage,
    CompileStage,
    ExecuteStage,
    JudgeStage,
    JudgeTask,
    PipelineItem,
    Stage,
    StageOutcome,
)
from repro.pipeline.stats import PipelineStats, StageStats

__all__ = [
    "PipelineConfig",
    "PipelineRecord",
    "PipelineResult",
    "ValidationPipeline",
    "PipelineStats",
    "StageStats",
    "Stage",
    "StageOutcome",
    "StageScheduler",
    "SchedulerResult",
    "StageError",
    "run_stage",
    "CompileStage",
    "ExecuteStage",
    "JudgeStage",
    "BatchJudgeStage",
    "JudgeTask",
    "PipelineItem",
]
