"""The generic stage scheduler.

:class:`StageScheduler` runs a linear chain of :class:`Stage` objects
as communicating worker pools — the substrate the validation pipeline
(compile → execute → judge) is built on, reusable for any staged,
routed workload (the experiment runner batches its retroactive judge
pass through a one-stage scheduler).

Responsibilities owned here so stages never re-implement them:

* one bounded queue per stage (back-pressure between pools);
* thread spawning with per-worker stage state
  (:meth:`Stage.make_worker_state`) and sentinel shutdown;
* per-stage statistics (:class:`~repro.pipeline.stats.StageStats`):
  pass/fail counts, busy and simulated seconds, downstream skips;
* forward routing — an outcome may jump over stages (record-all mode
  routes failed compiles straight to the judge);
* error containment — a stage that raises marks the item failed and
  keeps the run draining instead of deadlocking ``queue.join``.

Stages only decide *what to do with one item*; the scheduler decides
how items move.
"""

from __future__ import annotations

import contextlib
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.obs import trace
from repro.obs.metrics import get_metrics
from repro.pipeline.stages import Stage, StageOutcome
from repro.pipeline.stats import StageStats

_SENTINEL = object()


def _trace_label(item: Any) -> str:
    """Best-effort file name for an in-flight item (span/gantt label)."""
    name = getattr(item, "name", None)
    if isinstance(name, str):
        return name
    test = getattr(getattr(item, "record", None), "test", None)
    if test is None:
        test = getattr(item, "test", None)
    name = getattr(test, "name", None)
    return name if isinstance(name, str) else type(item).__name__


@dataclass(frozen=True)
class StageError:
    """One exception raised by a stage's ``process``."""

    stage: str
    payload: Any
    error: Exception


@dataclass
class SchedulerResult:
    """Everything one scheduler run produced."""

    finished: list = field(default_factory=list)
    stats: dict[str, StageStats] = field(default_factory=dict)
    errors: list[StageError] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: True when :meth:`StageScheduler.abort` cut the run short; the
    #: ``finished`` list then holds only the items that completed.
    aborted: bool = False

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_first(self, context: str) -> None:
        """Raise a RuntimeError for the first stage error, if any."""
        if not self.errors:
            return
        first = self.errors[0]
        raise RuntimeError(
            f"{context}: {len(self.errors)} stage failure(s); first: "
            f"stage {first.stage!r}: {first.error!r}"
        ) from first.error


class StageScheduler:
    """Bounded-queue, multi-pool executor for a chain of stages.

    Parameters
    ----------
    stages:
        Ordered stage chain.  Items enter at the first stage; outcomes
        route strictly *forward* (same-or-earlier routing would race
        the drain protocol, so it is rejected).
    queue_capacity:
        Bound of every inter-stage queue — the back-pressure knob.
    stats:
        Optional externally-owned ``{stage name: StageStats}`` so a
        caller (the validation pipeline) can surface scheduler counters
        through its own stats object.  Missing names get fresh ones.
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        queue_capacity: int = 64,
        stats: Mapping[str, StageStats] | None = None,
    ):
        if not stages:
            raise ValueError("scheduler needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"stage names must be unique, got {names}")
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        self.stages = list(stages)
        self.queue_capacity = queue_capacity
        self._index = {name: i for i, name in enumerate(names)}
        self._abort = threading.Event()
        provided = dict(stats or {})
        self.stats = {
            name: provided.get(name) or StageStats(name) for name in names
        }

    # ------------------------------------------------------------------

    def abort(self) -> None:
        """Ask a running :meth:`run` to wind down early.

        The feeder stops enqueuing new items and every worker starts
        passing queued items through unprocessed, so the run drains via
        the normal sentinel path instead of grinding through its
        backlog.  Items already inside a stage's ``process`` complete;
        everything else is dropped.  Safe to call from any thread (a
        signal handler, a supervising thread, a stage itself).  Note
        the service's graceful drain deliberately does *not* abort:
        its contract is that admitted requests finish.
        """
        self._abort.set()

    @property
    def aborting(self) -> bool:
        return self._abort.is_set()

    def run(self, items: Sequence[Any]) -> SchedulerResult:
        """Push ``items`` through the stage chain; block until drained.

        ``KeyboardInterrupt`` (Ctrl-C, or SIGTERM re-raised as one by
        the CLI) triggers the same early-drain as :meth:`abort` before
        propagating, so worker threads are parked — not abandoned mid-
        item — and a caller's ``finally`` can flush caches safely.
        """
        self._abort.clear()
        result = SchedulerResult(stats=self.stats)
        finished_lock = threading.Lock()

        # Tracing: contextvars do not cross threads, so capture the
        # submitting thread's context here and parent every stage span
        # explicitly; worker threads never read the contextvar directly.
        tracer = trace.active()
        run_span = None
        run_ctx = None
        if tracer is not None:
            run_span = tracer.start_span(
                "scheduler.run",
                parent=trace.current(),
                stages=",".join(self._index),
                items=len(items),
            )
            run_ctx = run_span.context
        metrics = get_metrics()

        queues = [
            queue.Queue(maxsize=self.queue_capacity) for _ in self.stages
        ]

        def finish(payload: Any) -> None:
            with finished_lock:
                result.finished.append(payload)

        def route(outcome: StageOutcome, from_index: int) -> None:
            if outcome.done:
                finish(outcome.payload)
                return
            if outcome.next_stage is None:
                target = from_index + 1
            else:
                target = self._index.get(outcome.next_stage)
                if target is None:
                    raise ValueError(
                        f"unknown stage {outcome.next_stage!r} "
                        f"(have {sorted(self._index)})"
                    )
            if target <= from_index:
                raise ValueError(
                    f"stage {self.stages[from_index].name!r} may only route "
                    f"forward, not to {self.stages[target].name!r}"
                )
            if target >= len(self.stages):
                # routed past the last stage: the item is finished
                finish(outcome.payload)
                return
            queues[target].put(outcome.payload)

        def worker(stage_index: int) -> None:
            stage = self.stages[stage_index]
            stats = self.stats[stage.name]
            state = stage.make_worker_state()
            q = queues[stage_index]
            while True:
                item = q.get()
                if item is _SENTINEL:
                    q.task_done()
                    return
                if self._abort.is_set():
                    # aborting: drain the backlog without processing it
                    q.task_done()
                    continue
                t0 = time.perf_counter()
                try:
                    with trace.span(
                        f"stage.{stage.name}",
                        parent=run_ctx,
                        file=_trace_label(item),
                    ):
                        outcome = stage.process(item, state)
                except Exception as exc:  # noqa: BLE001 - contained by design
                    busy = time.perf_counter() - t0
                    stats.record(False, busy, 0.0)
                    metrics.counter(
                        "pipeline_stage_errors_total", stage=stage.name
                    ).inc()
                    with finished_lock:
                        result.errors.append(StageError(stage.name, item, exc))
                    finish(item)
                else:
                    busy = time.perf_counter() - t0
                    metrics.histogram(
                        "pipeline_stage_seconds", stage=stage.name
                    ).observe(busy)
                    metrics.counter(
                        "pipeline_stage_items_total", stage=stage.name
                    ).inc()
                    if outcome.ok is not None:
                        simulated = (
                            busy
                            if outcome.simulated_seconds is None
                            else outcome.simulated_seconds
                        )
                        stats.record(outcome.ok, busy, simulated)
                    try:
                        for name in outcome.skip_stats:
                            self.stats[name].record_skip()
                        route(outcome, stage_index)
                    except Exception as exc:  # bad routing must not deadlock
                        with finished_lock:
                            result.errors.append(StageError(stage.name, item, exc))
                        finish(outcome.payload)
                q.task_done()

        started = time.perf_counter()
        pools: list[list[threading.Thread]] = []
        for i, stage in enumerate(self.stages):
            pools.append(_spawn(lambda i=i: worker(i), max(1, stage.workers)))

        try:
            for item in items:
                # abort-aware feed: a bounded queue's put would otherwise
                # block forever once workers stop consuming
                while not self._abort.is_set():
                    try:
                        queues[0].put(item, timeout=0.1)
                        break
                    except queue.Full:
                        continue
                if self._abort.is_set():
                    break

            # Drain front to back: routing is forward-only, so once stage
            # i's queue is empty and its workers are parked, nothing can
            # ever enqueue to stage i again.
            for q, pool in zip(queues, pools):
                q.join()
                for _ in pool:
                    q.put(_SENTINEL)
                for thread in pool:
                    thread.join()
        except KeyboardInterrupt:
            self._abort.set()
            # workers are now fast-draining their backlogs; park every
            # pool through the sentinel path so no thread is left mid-
            # run.  Sentinels go in non-blocking (a full queue just gets
            # retried — live workers are consuming it) so this path can
            # never itself wedge on a bounded queue.
            for q, pool in zip(queues, pools):
                for thread in pool:
                    while thread.is_alive():
                        with contextlib.suppress(queue.Full):
                            q.put_nowait(_SENTINEL)
                        thread.join(timeout=0.05)
            result.aborted = True
            result.wall_seconds = time.perf_counter() - started
            if run_span is not None:
                run_span.attrs["aborted"] = True
                tracer.finish(run_span)
            raise

        result.aborted = self._abort.is_set()
        result.wall_seconds = time.perf_counter() - started
        if run_span is not None:
            tracer.finish(run_span)
        return result


def run_stage(
    stage: Stage,
    items: Sequence[Any],
    queue_capacity: int = 64,
    stats: Mapping[str, StageStats] | None = None,
) -> SchedulerResult:
    """Convenience: run one stage's worker pool over ``items``."""
    return StageScheduler([stage], queue_capacity=queue_capacity, stats=stats).run(items)


def _spawn(target: Callable[[], None], count: int) -> list[threading.Thread]:
    threads = [threading.Thread(target=target, daemon=True) for _ in range(count)]
    for thread in threads:
        thread.start()
    return threads
