"""Durable experiment runs: a run directory that survives being killed.

``llm4vv experiment <artifact> --run-dir DIR`` (and experiment jobs on
the daemon) route through :func:`run_artifacts`, which gives a sweep
the same durability contract the fuzz campaign has:

* ``progress.json`` — the run's spec (scale, seed, artifacts, backend,
  jobs) plus its state and, once finished, the artifact digest; written
  atomically, so ``--resume DIR`` can always reconstruct what was asked
  for.
* ``cells/<cell>.pkl`` — one atomic pickle per finished matrix cell
  (see :func:`repro.experiments.sharding.save_cell_result`), landed the
  moment the cell completes.
* ``artifacts.md`` — every requested table/figure rendered in order,
  written once all cells exist.

Resume loads the completed cell pickles, installs them into a fresh
:class:`~repro.experiments.runner.Experiments`, computes only the
missing cells, and renders — byte-identical to an uninterrupted run,
because cells are deterministic and PR 3's sharding gate already proves
pickled reports render the same bytes.  The digest recorded in
``progress.json`` (a :func:`content_key` over the rendered texts) is
what the crash-recovery tests compare.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.cache.keys import content_key
from repro.core.atomicio import atomic_write_json, atomic_write_text
from repro.experiments.config import ExperimentConfig
from repro.experiments.sharding import _already_filled, _install, load_cell_results, plan, prefill

RUN_VERSION = 1
PROGRESS_NAME = "progress.json"
ARTIFACTS_NAME = "artifacts.md"

#: every standard artifact, in render order ("all")
ALL_ARTIFACTS = tuple(f"table{i}" for i in range(1, 10)) + tuple(
    f"fig{i}" for i in range(3, 7)
)


class RunDirError(Exception):
    """A run directory exists but its progress record cannot be used."""


@dataclass(frozen=True)
class ExperimentRunSpec:
    """What a durable experiment run computes (journal-portable)."""

    scale: str = "small"
    seed: int = 20240822
    artifacts: tuple[str, ...] = ALL_ARTIFACTS
    backend: str = "closure"
    jobs: int = 1

    def to_json(self) -> dict:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "artifacts": list(self.artifacts),
            "backend": self.backend,
            "jobs": self.jobs,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ExperimentRunSpec":
        artifacts = data.get("artifacts")
        return cls(
            scale=data.get("scale", "small"),
            seed=int(data.get("seed", 20240822)),
            artifacts=tuple(artifacts) if artifacts else ALL_ARTIFACTS,
            backend=data.get("backend", "closure"),
            jobs=int(data.get("jobs", 1)),
        )


@dataclass
class ExperimentRunOutcome:
    """What :func:`run_artifacts` hands back to the CLI / job runner."""

    texts: dict[str, str]  # artifact name -> rendered text, spec order
    digest: str
    reused_cells: int
    computed_cells: int
    run_dir: Path


def load_run_spec(run_dir: str | Path) -> ExperimentRunSpec | None:
    """The spec recorded in ``run_dir``'s progress.json; None if absent."""
    path = Path(run_dir) / PROGRESS_NAME
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise RunDirError(f"unreadable progress record {path}: {exc}") from exc
    if not isinstance(data, dict) or "spec" not in data:
        raise RunDirError(f"malformed progress record {path}")
    return ExperimentRunSpec.from_json(data["spec"])


def _write_progress(run_dir: Path, spec: ExperimentRunSpec, state: str,
                    digest: str | None = None, cells: list[str] | None = None) -> None:
    atomic_write_json(
        run_dir / PROGRESS_NAME,
        {
            "version": RUN_VERSION,
            "spec": spec.to_json(),
            "state": state,
            "digest": digest,
            "cells": cells or [],
        },
        indent=2,
        sort_keys=True,
        fault_tag="experiment-progress",
    )


def run_artifacts(spec: ExperimentRunSpec, run_dir: str | Path, cache=None,
                  progress=None, stop=None) -> ExperimentRunOutcome:
    """Compute ``spec``'s artifacts durably under ``run_dir``.

    Reuses any cell checkpoints already in the directory (resume after
    a kill), computes the rest with per-cell checkpointing, renders the
    artifacts and records the digest.  ``stop`` is honoured between
    cells (serial path): a set event raises :class:`InterruptedError`
    after everything finished so far has been checkpointed.
    """
    from repro.experiments.runner import Experiments

    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    config = ExperimentConfig(
        scale=spec.scale,
        seed=spec.seed,
        execution_backend=spec.backend,
        jobs=spec.jobs,
        cache_enabled=cache is not None,
        cache_dir=(
            str(cache.cache_dir)
            if cache is not None and getattr(cache, "cache_dir", None) is not None
            else None
        ),
    )
    exp = Experiments(config, cache=cache)
    names = list(spec.artifacts)
    for name in names:
        if getattr(exp, name, None) is None:
            raise ValueError(f"unknown artifact {name!r}")

    _write_progress(run_dir, spec, state="running")
    needed = plan(names)
    checkpointed = load_cell_results(run_dir)
    reused = 0
    for cell in needed:
        result = checkpointed.get(cell.name)
        if result is not None and not _already_filled(exp, cell):
            _install(exp, result)
            reused += 1
            if progress:
                progress(f"reusing checkpointed cell {cell.name}")
    prefill(exp, artifacts=names, jobs=spec.jobs, checkpoint_dir=run_dir, stop=stop)

    texts = {name: getattr(exp, name)().text for name in names}
    digest = content_key("experiment-run", [[name, texts[name]] for name in names])
    body = "".join(
        f"## {name}\n\n```\n{texts[name]}\n```\n\n" for name in names
    )
    atomic_write_text(run_dir / ARTIFACTS_NAME, body, fault_tag="experiment-artifacts")
    _write_progress(
        run_dir, spec, state="done", digest=digest,
        cells=[cell.name for cell in needed],
    )
    return ExperimentRunOutcome(
        texts=texts,
        digest=digest,
        reused_cells=reused,
        computed_cells=len(needed) - reused,
        run_dir=run_dir,
    )
