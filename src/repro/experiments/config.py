"""Experiment configuration: scales, seeds, issue mixes.

``scale="paper"`` reproduces the paper's population sizes (1335/431
files for Part One, 1782/296 for Part Two); ``scale="small"`` shrinks
everything ~6x for tests and benchmarks while preserving the issue
mix, languages and protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.environment import DEFAULT_FLAKE_RATES

#: Issue mixes matching the published per-issue counts.
PART1_ACC_WEIGHTS = {0: 0.304, 1: 0.187, 2: 0.162, 3: 0.175, 4: 0.171}
PART1_OMP_WEIGHTS = {0: 0.274, 1: 0.181, 2: 0.153, 3: 0.237, 4: 0.153}
PART2_ACC_WEIGHTS = {0: 0.305, 1: 0.164, 2: 0.169, 3: 0.164, 4: 0.198}
PART2_OMP_WEIGHTS = {0: 0.331, 1: 0.189, 2: 0.176, 3: 0.135, 4: 0.169}

_SCALES = {
    # (part1 acc, part1 omp, part2 acc, part2 omp)
    "paper": (1336, 432, 1782, 296),
    "small": (220, 120, 280, 148),
    "tiny": (60, 32, 72, 32),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of the reproduction, with paper-faithful defaults."""

    scale: str = "paper"
    seed: int = 20240822
    model_seed: int = 99
    #: fraction of issue-3 random files that are themselves compilable
    random_code_valid_fraction: float = 0.6
    #: toolchain nonconformance rates on valid files (see environment.py)
    flake_rates: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_FLAKE_RATES))
    openmp_max_version: float = 4.5
    step_limit: int = 3_000_000
    #: interpreter evaluator: any name in
    #: :data:`repro.runtime.interpreter.EXECUTION_BACKENDS` ("closure"
    #: is the fast default, "walk" the executable spec, "codegen" the
    #: generated-code backend)
    execution_backend: str = "closure"
    compile_workers: int = 2
    execute_workers: int = 2
    judge_workers: int = 2
    #: content-addressed result caching (see repro.cache): reuses
    #: compile/execute/judge artifacts within and across runs
    cache_enabled: bool = True
    #: directory for JSON persistence of the execute/judge namespaces
    #: (None = in-memory only)
    cache_dir: str | None = None
    #: LRU bound per cache namespace
    cache_max_entries: int = 65536
    #: worker processes for the experiment matrix (see
    #: repro.experiments.sharding): 1 = sequential in-process, N > 1
    #: fans independent (part × flavor) cells over N processes that
    #: share execute/judge results through an on-disk cache
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.scale not in _SCALES:
            raise ValueError(f"scale must be one of {sorted(_SCALES)}, got {self.scale!r}")
        from repro.runtime.interpreter import EXECUTION_BACKENDS

        if self.execution_backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"execution_backend must be one of {EXECUTION_BACKENDS},"
                f" got {self.execution_backend!r}"
            )
        if self.cache_max_entries < 1:
            raise ValueError(
                f"cache_max_entries must be >= 1, got {self.cache_max_entries}"
            )
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    # population sizes -----------------------------------------------------

    @property
    def part1_acc_count(self) -> int:
        return _SCALES[self.scale][0]

    @property
    def part1_omp_count(self) -> int:
        return _SCALES[self.scale][1]

    @property
    def part2_acc_count(self) -> int:
        return _SCALES[self.scale][2]

    @property
    def part2_omp_count(self) -> int:
        return _SCALES[self.scale][3]

    def part2_count(self, flavor: str, tag: str = "part2") -> int:
        """Part-Two population size for a run tag.

        Non-standard tags (the extension runs, e.g. ``fortran-ext``)
        use a shrunk population: a quarter of the scale, floored at 24
        so per-issue cells stay populated.  The experiment runner and
        the sharding cost model both rely on this being the single
        source of that rule.
        """
        count = self.part2_acc_count if flavor == "acc" else self.part2_omp_count
        if tag != "part2":
            count = max(24, count // 4)
        return count

    # protocol details -----------------------------------------------------

    @property
    def part1_acc_languages(self) -> tuple[str, ...]:
        """Part One OpenACC used C, C++ and a small set of Fortran files."""
        return ("c", "cpp", "f90")

    @property
    def part1_omp_languages(self) -> tuple[str, ...]:
        """Part One OpenMP used only C files (paper §V-A)."""
        return ("c",)

    @property
    def part2_languages(self) -> tuple[str, ...]:
        """Part Two used C and C++ for both models (paper §V-B)."""
        return ("c", "cpp")
