"""Process-level sharding of the experiment matrix.

The paper's artifact matrix (Tables I-IX, Figures 3-6) is derived from
four independent underlying computations — the *cells*:

* ``part1 × acc`` and ``part1 × omp`` — population generation plus the
  tool-less direct-judge sweep;
* ``part2 × acc`` and ``part2 × omp`` — population generation, the
  record-all validation pipeline, and the retroactive LLMJ-2 pass;

plus the optional ``fortran-ext`` cell (the future-work extension).
Every table and figure is pure composition over the reports those
cells produce, so the cells can run in separate worker processes and
the parent can render byte-identical artifacts from the merged
results.  This is the third leg of the scale story: threads inside a
cell (the stage scheduler), a fast evaluator inside a worker (the
closure backend), and now processes across cells — the only layer the
GIL cannot flatten.

Protocol:

1. :func:`plan` maps requested artifact names to the deduplicated cell
   set, ordered costliest-first (longest-processing-time scheduling,
   so the big Part-Two cells start before the small Part-One ones).
2. :func:`run_cells` fans the cells over a process pool (``fork``
   where available, ``spawn`` otherwise).  The worker entrypoint
   (:func:`run_cell`) is spawn-safe — a module-level function taking
   only picklable arguments: it rebuilds ``ExperimentConfig`` (with
   ``jobs=1`` — workers never recurse) and a per-process
   ``PipelineCache`` pointed at a *shared* on-disk cache directory, so
   shards warm-start from and publish to the same execute/judge store
   (merge-on-save with per-namespace file locking, see
   :mod:`repro.cache.store`).
3. :func:`prefill` installs the returned reports into an
   :class:`~repro.experiments.runner.Experiments` instance, merges the
   shared cache back into the parent's in-memory bundle, and
   aggregates per-shard :class:`~repro.pipeline.stats.PipelineStats`.

Determinism: cells are seeded and self-contained (each worker builds
its own model/generator from the config seeds), so a sharded run
produces exactly the reports a sequential run would — byte-identical
tables and figures, asserted end-to-end by
``benchmarks/test_experiment_sharding.py``.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.atomicio import atomic_write_bytes
from repro.experiments.config import ExperimentConfig
from repro.pipeline.stats import PipelineStats
from repro.testing.faultinject import fault_point

#: subdirectory of a durable run dir holding per-cell result pickles
CELLS_DIRNAME = "cells"


@dataclass(frozen=True)
class Cell:
    """One independent unit of the experiment matrix."""

    kind: str  # 'part1' | 'part2'
    flavor: str  # 'acc' | 'omp'
    languages: tuple[str, ...] | None = None  # None = config default
    tag: str = "part2"  # part2 population tag; ignored for part1

    @property
    def name(self) -> str:
        if self.kind == "part1":
            return f"part1:{self.flavor}"
        if self.tag == "part2":
            return f"part2:{self.flavor}"
        return f"part2:{self.flavor}:{self.tag}"

    @property
    def key(self) -> str:
        """The runner's memo key this cell fills."""
        return self.flavor if self.kind == "part1" else f"{self.flavor}:{self.tag}"


PART1_ACC = Cell("part1", "acc")
PART1_OMP = Cell("part1", "omp")
PART2_ACC = Cell("part2", "acc")
PART2_OMP = Cell("part2", "omp")
FORTRAN_EXT = Cell("part2", "acc", languages=("f90",), tag="fortran-ext")

#: The cells behind the standard table/figure matrix (no extension).
STANDARD_CELLS = (PART1_ACC, PART1_OMP, PART2_ACC, PART2_OMP)

#: artifact name -> cells it composes over
ARTIFACT_CELLS: dict[str, tuple[Cell, ...]] = {
    "table1": (PART1_ACC,),
    "table2": (PART1_OMP,),
    "table3": (PART1_ACC, PART1_OMP),
    "table4": (PART2_ACC,),
    "table5": (PART2_OMP,),
    "table6": (PART2_ACC, PART2_OMP),
    "table7": (PART2_ACC,),
    "table8": (PART2_OMP,),
    "table9": (PART2_ACC, PART2_OMP),
    "fig3": (PART2_ACC,),
    "fig4": (PART2_OMP,),
    "fig5": (PART1_ACC, PART2_ACC),
    "fig6": (PART1_OMP, PART2_OMP),
    "fortran_extension": (FORTRAN_EXT,),
}


def estimated_cost(config: ExperimentConfig, cell: Cell) -> int:
    """Relative cost of a cell, in judge-call-weighted file units.

    Part-Two files cost ~3x a Part-One file: the validation pipeline
    run plus two agent-judge passes versus one direct-judge sweep.
    Only the ordering matters (longest-processing-time submission).
    """
    if cell.kind == "part1":
        return config.part1_acc_count if cell.flavor == "acc" else config.part1_omp_count
    return 3 * config.part2_count(cell.flavor, cell.tag)


def plan(artifacts: list[str] | None = None) -> list[Cell]:
    """The deduplicated cells needed for ``artifacts``.

    ``None`` means the full standard matrix (every table and figure).
    Unknown artifact names are skipped — the runner reports them when
    it fails to resolve the method, with better context than we have.
    The result is in *declaration* order; callers that care about load
    balance should submit via :func:`run_cells`, which re-orders
    costliest-first.
    """
    if artifacts is None:
        return list(STANDARD_CELLS)
    cells: list[Cell] = []
    for artifact in artifacts:
        for cell in ARTIFACT_CELLS.get(artifact, ()):
            if cell not in cells:
                cells.append(cell)
    return cells


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------


@dataclass
class CellResult:
    """What one worker sends back: the cell's reports plus bookkeeping.

    Everything here crosses a process boundary by pickle; ``run`` is
    the runner's ``_Part2Run`` (reports, population, pipeline result —
    all plain data; stage stats drop their locks in ``__getstate__``).
    """

    cell: Cell
    report: object = None  # MetricsReport (part1 cells)
    run: object = None  # _Part2Run (part2 cells)
    stats: PipelineStats | None = None
    seconds: float = 0.0
    cache_summary: dict | None = None


def run_cell(
    config: ExperimentConfig, cell: Cell, cache_dir: str | None = None
) -> CellResult:
    """Compute one cell in *this* process (the spawn-safe entrypoint).

    Rebuilds the experiment harness from the picklable ``config``:
    ``jobs`` is forced to 1 (workers never shard recursively) and the
    cache is repointed at ``cache_dir``, the run's shared on-disk
    store, so sibling shards exchange execute/judge hits through the
    lock-protected merge-on-save path instead of clobbering each
    other.
    """
    from repro.experiments.runner import Experiments

    worker_config = replace(
        config,
        jobs=1,
        cache_dir=cache_dir if cache_dir is not None else config.cache_dir,
    )
    exp = Experiments(worker_config)
    t0 = time.perf_counter()
    if cell.kind == "part1":
        report = exp.part1_report(cell.flavor)
        run = stats = None
    else:
        run = exp.part2_run(cell.flavor, languages=cell.languages, tag=cell.tag)
        report = None
        stats = run.pipeline1.stats
    return CellResult(
        cell=cell,
        report=report,
        run=run,
        stats=stats,
        seconds=time.perf_counter() - t0,
        cache_summary=exp.cache.summary() if exp.cache is not None else None,
    )


# ----------------------------------------------------------------------
# per-cell checkpoints (durable experiment runs)
# ----------------------------------------------------------------------


def _cell_checkpoint_path(run_dir: str | Path, cell_name: str) -> Path:
    return Path(run_dir) / CELLS_DIRNAME / (cell_name.replace(":", "_") + ".pkl")


def save_cell_result(run_dir: str | Path, result: CellResult) -> Path:
    """Persist one finished cell into a run directory (atomic pickle).

    The pickle is the same payload that crosses the process boundary in
    a sharded run — PR 3's byte-identity gate already proves a report
    that round-trips through pickle renders the same artifact bytes, so
    resuming from these checkpoints cannot change the output.
    """
    path = _cell_checkpoint_path(run_dir, result.cell.name)
    atomic_write_bytes(path, pickle.dumps(result), fault_tag="experiment-cell")
    fault_point("experiment:post-cell")
    return path


def load_cell_results(run_dir: str | Path) -> dict[str, CellResult]:
    """Completed cells previously checkpointed under ``run_dir``.

    Unreadable pickles are skipped, not fatal: the atomic write keeps
    torn files from existing, but a checkpoint that is damaged by other
    means just means its cell is recomputed.
    """
    directory = Path(run_dir) / CELLS_DIRNAME
    results: dict[str, CellResult] = {}
    if not directory.is_dir():
        return results
    for path in sorted(directory.glob("*.pkl")):
        try:
            result = pickle.loads(path.read_bytes())
        except Exception:
            continue
        if isinstance(result, CellResult):
            results[result.cell.name] = result
    return results


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------


def default_start_method() -> str:
    """``fork`` where available (cheap start, no re-import), else
    ``spawn``.  The entrypoint stays spawn-safe either way — a
    module-level function taking only picklable arguments — so forcing
    ``start_method="spawn"`` always works (and is what the tests pin)."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def run_cells(
    config: ExperimentConfig,
    cells: list[Cell],
    jobs: int | None = None,
    cache_dir: str | None = None,
    start_method: str | None = None,
    checkpoint_dir: str | Path | None = None,
    stop=None,
) -> list[CellResult]:
    """Fan ``cells`` over ``jobs`` worker processes; returns results in
    the order of ``cells``.

    ``jobs`` defaults to ``config.jobs``.  With one job (or one cell)
    everything runs in-process — no pool, no pickling, identical
    semantics.  ``start_method`` defaults to
    :func:`default_start_method`; results always cross back by pickle,
    so both start methods exercise the same (de)serialisation path.

    ``checkpoint_dir`` persists each finished cell immediately (see
    :func:`save_cell_result`), so a killed run resumes without redoing
    completed cells.  ``stop`` (an event) is honoured between cells on
    the serial path: a set event raises :class:`InterruptedError`, and
    everything checkpointed so far stays on disk — the daemon's
    checkpoint-then-drain boundary for experiment jobs.
    """
    jobs = config.jobs if jobs is None else jobs
    if jobs <= 1 or len(cells) <= 1:
        results = []
        for cell in cells:
            if stop is not None and stop.is_set():
                raise InterruptedError(
                    f"stopped before cell {cell.name}; "
                    f"{len(results)}/{len(cells)} cells checkpointed"
                )
            result = run_cell(config, cell, cache_dir)
            if checkpoint_dir is not None:
                save_cell_result(checkpoint_dir, result)
            results.append(result)
        return results

    # longest-processing-time submission: big cells first, so the pool
    # never ends with a lone Part-Two shard running while others idle
    order = sorted(
        range(len(cells)), key=lambda i: estimated_cost(config, cells[i]), reverse=True
    )
    ctx = multiprocessing.get_context(start_method or default_start_method())
    with package_root_on_pythonpath():
        with ctx.Pool(processes=min(jobs, len(cells))) as pool:
            pending = {
                i: pool.apply_async(run_cell, (config, cells[i], cache_dir))
                for i in order
            }
            # collect in submission (roughly completion) order so each
            # result is checkpointed as soon as it is available, not
            # after the slowest cell lands
            collected: dict[int, CellResult] = {}
            for i in order:
                result = pending[i].get()
                if checkpoint_dir is not None:
                    save_cell_result(checkpoint_dir, result)
                collected[i] = result
            results = [collected[i] for i in range(len(cells))]
    return results


@contextlib.contextmanager
def package_root_on_pythonpath():
    """Expose repro's root via PYTHONPATH while workers are spawned.

    Spawned children re-import repro, which fails if the parent found
    the package through sys.path manipulation only.  The mutation is
    scoped to pool creation and undone afterwards, so unrelated
    subprocesses launched later by an embedding application don't
    inherit it.  Public because every process-pool layer needs it — the
    experiment sharder here and the service's validation
    :class:`~repro.service.workers.WorkerPool`.
    """
    src_root = str(Path(__file__).resolve().parents[2])
    before = os.environ.get("PYTHONPATH")
    if before is not None and src_root in before.split(os.pathsep):
        yield
        return
    os.environ["PYTHONPATH"] = (
        src_root if not before else src_root + os.pathsep + before
    )
    try:
        yield
    finally:
        if before is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = before


def prefill(
    experiments, artifacts: list[str] | None = None, jobs: int | None = None,
    checkpoint_dir: str | Path | None = None, stop=None,
) -> PipelineStats | None:
    """Compute the cells ``artifacts`` need and install them into
    ``experiments``, so subsequent ``tableN()``/``figN()`` calls are
    pure composition over already-present reports.

    Cells the instance has already computed (or prefetched) are not
    re-run.  When the config has no ``cache_dir`` but caching is on, a
    temporary directory is provisioned for the duration of the fan-out
    so shards still share results; the parent merges the shared store
    into its in-memory bundle either way, warm-starting any later
    work.  Returns the aggregated per-shard pipeline stats (also left
    on ``experiments.shard_stats``), or None if nothing needed to run.
    """
    config = experiments.config
    jobs = config.jobs if jobs is None else jobs
    cells = [
        cell
        for cell in plan(artifacts)
        if not _already_filled(experiments, cell)
    ]
    if not cells:
        return None

    cache_dir = config.cache_dir
    tmp: tempfile.TemporaryDirectory | None = None
    if cache_dir is None and experiments.cache is not None and jobs > 1:
        tmp = tempfile.TemporaryDirectory(prefix="repro-shard-cache-")
        cache_dir = tmp.name
    try:
        if experiments.cache is not None and cache_dir is not None:
            # flush the parent's in-memory entries first, so workers
            # warm-start from results this instance already holds
            for namespace in experiments.cache.namespaces:
                namespace.save_to(cache_dir)
        results = run_cells(
            config, cells, jobs=jobs, cache_dir=cache_dir,
            checkpoint_dir=checkpoint_dir, stop=stop,
        )
        aggregate = PipelineStats()
        for result in results:
            _install(experiments, result)
            if result.stats is not None:
                aggregate.merge(result.stats)
            _fold_cache_counters(experiments, result)
        if experiments.cache is not None and cache_dir is not None:
            for namespace in experiments.cache.namespaces:
                namespace.load_from(cache_dir)
    finally:
        if tmp is not None:
            tmp.cleanup()
    experiments.shard_stats = aggregate
    experiments.shard_cells = [
        (result.cell.name, result.seconds) for result in results
    ]
    return aggregate


def _already_filled(experiments, cell: Cell) -> bool:
    if cell.kind == "part1":
        return cell.key in experiments._part1_reports
    return cell.key in experiments._part2_runs


def _install(experiments, result: CellResult) -> None:
    cell = result.cell
    if cell.kind == "part1":
        experiments._part1_reports[cell.key] = result.report
    else:
        experiments._part2_runs[cell.key] = result.run


def _fold_cache_counters(experiments, result: CellResult) -> None:
    """Roll a worker's hit/miss counters into the parent bundle, so the
    CLI's cache summary reflects the whole fleet, not just the parent."""
    if experiments.cache is None or not result.cache_summary:
        return
    for namespace in experiments.cache.namespaces:
        snapshot = result.cache_summary["namespaces"].get(namespace.name)
        if snapshot:
            namespace.hits += snapshot["hits"]
            namespace.misses += snapshot["misses"]
