"""Programmatic ablation studies over the reproduction's design knobs.

DESIGN.md §7 calls out three questions the paper leaves open; each has
a runner here (and a bench in ``benchmarks/``):

* :func:`early_exit_ablation` — how much judge work does the staged
  pipeline's early exit save, at what (zero) accuracy cost?
* :func:`flake_rate_sweep` — how does real-toolchain nonconformance on
  valid files move pipeline-vs-judge accuracy apart (the effect behind
  the paper's Table IV/VII gap)?
* :func:`seed_variance` — how stable are the headline metrics across
  model seeds (the paper reports single runs)?
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.generator import TestFile
from repro.experiments.environment import EnvironmentModel
from repro.llm.model import DeepSeekCoderSim
from repro.metrics.accuracy import MetricsReport, score_evaluations
from repro.pipeline.engine import PipelineConfig, ValidationPipeline


@dataclass
class EarlyExitResult:
    accuracy_record_all: float
    accuracy_early_exit: float
    judge_calls_record_all: int
    judge_calls_early_exit: int
    simulated_seconds_record_all: float
    simulated_seconds_early_exit: float

    @property
    def judge_calls_saved(self) -> int:
        return self.judge_calls_record_all - self.judge_calls_early_exit

    @property
    def speedup(self) -> float:
        if self.simulated_seconds_early_exit <= 0:
            return 1.0
        return self.simulated_seconds_record_all / self.simulated_seconds_early_exit


def early_exit_ablation(
    files: list[TestFile], flavor: str = "acc", model_seed: int = 11
) -> EarlyExitResult:
    """Run the pipeline both ways over one population."""
    results = {}
    for early_exit in (False, True):
        pipeline = ValidationPipeline(
            PipelineConfig(flavor=flavor, early_exit=early_exit),
            model=DeepSeekCoderSim(seed=model_seed),
        )
        run = pipeline.run(files)
        verdicts = [r.pipeline_says_valid for r in run.records]
        ordered = [r.test for r in run.records]
        report = score_evaluations("pipeline", ordered, verdicts)
        results[early_exit] = (report, run.stats)
    report_all, stats_all = results[False]
    report_early, stats_early = results[True]
    return EarlyExitResult(
        accuracy_record_all=report_all.overall_accuracy,
        accuracy_early_exit=report_early.overall_accuracy,
        judge_calls_record_all=stats_all.judge.processed,
        judge_calls_early_exit=stats_early.judge.processed,
        simulated_seconds_record_all=stats_all.judge.simulated_seconds,
        simulated_seconds_early_exit=stats_early.judge.simulated_seconds,
    )


@dataclass
class FlakeSweepPoint:
    flake_rate: float
    pipeline_valid_accuracy: float
    judge_valid_accuracy: float

    @property
    def gap(self) -> float:
        return self.judge_valid_accuracy - self.pipeline_valid_accuracy


def flake_rate_sweep(
    files: list[TestFile],
    rates: tuple[float, ...] = (0.0, 0.07, 0.14, 0.28),
    flavor: str = "acc",
    model_seed: int = 11,
) -> list[FlakeSweepPoint]:
    """Sweep toolchain-flake rates; measure the pipeline/judge gap on
    valid files (the paper's Table IV vs VII discrepancy mechanism)."""
    points: list[FlakeSweepPoint] = []
    for rate in rates:
        pipeline = ValidationPipeline(
            PipelineConfig(flavor=flavor, early_exit=False),
            model=DeepSeekCoderSim(seed=model_seed),
            environment=EnvironmentModel(compile_flake_rate=rate, seed=3),
        )
        run = pipeline.run(files)
        valid_records = [r for r in run.records if r.test.is_valid]
        if not valid_records:
            continue
        pipeline_ok = sum(1 for r in valid_records if r.pipeline_says_valid)
        judge_ok = sum(
            1
            for r in valid_records
            if r.judge_result is not None and r.judge_result.says_valid
        )
        points.append(
            FlakeSweepPoint(
                flake_rate=rate,
                pipeline_valid_accuracy=pipeline_ok / len(valid_records),
                judge_valid_accuracy=judge_ok / len(valid_records),
            )
        )
    return points


@dataclass
class SeedVarianceResult:
    seeds: list[int]
    accuracies: list[float]
    biases: list[float]
    reports: list[MetricsReport] = field(default_factory=list)

    @property
    def accuracy_mean(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def accuracy_std(self) -> float:
        return float(np.std(self.accuracies))

    @property
    def bias_mean(self) -> float:
        return float(np.mean(self.biases))


def seed_variance(
    files: list[TestFile],
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    flavor: str = "acc",
    judge_kind: str = "direct",
) -> SeedVarianceResult:
    """Replicate the pipeline run across model seeds.

    The paper reports one run per configuration; this quantifies how
    much of each cell is sampling noise from the judge's stochastic
    decisions.
    """
    result = SeedVarianceResult(seeds=list(seeds), accuracies=[], biases=[])
    for seed in seeds:
        pipeline = ValidationPipeline(
            PipelineConfig(flavor=flavor, judge_kind=judge_kind, early_exit=False),
            model=DeepSeekCoderSim(seed=seed),
        )
        run = pipeline.run(files)
        verdicts = [r.pipeline_says_valid for r in run.records]
        ordered = [r.test for r in run.records]
        report = score_evaluations(f"seed={seed}", ordered, verdicts)
        result.accuracies.append(report.overall_accuracy)
        result.biases.append(report.bias)
        result.reports.append(report)
    return result
