"""Toolchain-environment model: nonconformance on *valid* tests.

The paper ran against real toolchains (NVIDIA HPC SDK ``nvc``, LLVM
OpenMP offload), which reject a fraction of perfectly valid manually
written V&V tests — unsupported feature combinations, frontend bugs,
partial compliance.  That is visible in the published numbers: pipeline
accuracy on unchanged OpenACC files (79%, Table IV) sits well below
the agent judge's own accuracy on them (92%, Table VII), which is only
possible if some valid files never made it through compile/run.

Our simulated toolchain is fully conformant by construction, so this
model re-injects that effect: a deterministic, seeded fraction of files
has its successful compile replaced by a ``toolchain-limitation``
failure.  The synthetic stderr mimics the real failure class — and the
judge (correctly) gives such environment noise little weight, which is
what lets LLMJ-alone accuracy stay high while the pipeline rejects the
file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.compiler.driver import CompileResult
from repro.corpus.generator import TestFile

_STDERR_TEMPLATE = (
    "{name}: error: internal compiler limitation: unsupported feature "
    "combination for this offload target [-Wtoolchain-limitation]\n"
    "1 error generated."
)


@dataclass(frozen=True)
class EnvironmentModel:
    """Deterministic per-file toolchain flakiness.

    ``compile_flake_rate`` is the probability (over the seeded hash of
    the file name) that a *successful* compile is replaced by a
    toolchain-limitation failure.  Files that already fail are left
    untouched — real nonconformance only ever costs you good tests.
    """

    compile_flake_rate: float = 0.0
    seed: int = 7

    def is_flaky(self, name: str) -> bool:
        if self.compile_flake_rate <= 0.0:
            return False
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return fraction < self.compile_flake_rate

    def apply(self, test: TestFile, compiled: CompileResult) -> CompileResult:
        """Post-process one compile result."""
        if not compiled.ok or not self.is_flaky(test.name):
            return compiled
        return CompileResult(
            returncode=2,
            stdout="",
            stderr=_STDERR_TEMPLATE.format(name=test.name),
            filename=compiled.filename,
            language=compiled.language,
            unit=None,
            info=compiled.info,
            diagnostic_codes=["toolchain-limitation"],
            error_count=1,
            warning_count=0,
        )


#: Calibrated rates: the ACC toolchain of the paper rejected ~14% of the
#: valid manually-written suite, the OpenMP (<=4.5-restricted) corpus
#: almost none — the paper filtered it to fully-supported features.
DEFAULT_FLAKE_RATES = {"acc": 0.14, "omp": 0.015}
