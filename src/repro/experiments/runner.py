"""The experiment runner: regenerate every table and figure.

One :class:`Experiments` instance lazily builds and caches the shared
artifacts:

* Part One populations (OpenACC C/C++/Fortran, OpenMP C) and the
  tool-less direct judge's evaluations — Tables I-III, the direct
  series of Figures 5/6;
* Part Two populations (C/C++) pushed through the record-all
  validation pipeline once per flavor; LLMJ 2 verdicts are recomputed
  from the recorded tool reports, exactly like the paper's
  retroactive analysis — Tables IV-IX, Figures 3-6.

Every ``tableN()`` / ``figN()`` method returns the regenerated artifact
*and* the published values, so callers (benches, EXPERIMENTS.md) can
print paper-vs-measured side by side.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.cache.bundle import PipelineCache
from repro.cache.wrappers import CachingDirectJudge
from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.experiments import paperdata
from repro.experiments.config import (
    PART1_ACC_WEIGHTS,
    PART1_OMP_WEIGHTS,
    PART2_ACC_WEIGHTS,
    PART2_OMP_WEIGHTS,
    ExperimentConfig,
)
from repro.experiments.environment import EnvironmentModel
from repro.judge.llmj import DirectLLMJ
from repro.llm.model import DeepSeekCoderSim
from repro.metrics.accuracy import EvaluationSet, MetricsReport
from repro.metrics.radar import RadarSeries, radar_series
from repro.metrics.tables import (
    render_comparison_table,
    render_issue_table,
    render_overall_table,
)
from repro.pipeline.engine import PipelineConfig, PipelineResult, ValidationPipeline
from repro.pipeline.scheduler import run_stage
from repro.pipeline.stages import BatchJudgeStage, JudgeTask
from repro.probing.prober import NegativeProber, ProbingSuite


@dataclass
class TableResult:
    """One regenerated table plus its published counterpart."""

    name: str
    title: str
    text: str
    reports: list[MetricsReport]
    paper: object = None

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


@dataclass
class FigureResult:
    """One regenerated figure plus its published axis values."""

    name: str
    title: str
    series: list[RadarSeries]
    text: str
    paper: dict[str, dict[str, float]] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


@dataclass
class _Part2Run:
    population: ProbingSuite
    pipeline1: PipelineResult
    llmj1_report: MetricsReport
    llmj2_report: MetricsReport
    pipeline1_report: MetricsReport
    pipeline2_report: MetricsReport


class Experiments:
    """Lazily-cached reproduction of every table and figure.

    ``cache`` is the content-addressed result store shared by corpus
    generation, the validation pipeline and the judge sweeps.  Passing
    the same :class:`PipelineCache` to several instances (or persisting
    it via ``config.cache_dir``) turns repeated runs of the same
    configuration from O(corpus) into O(cache-miss).
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        cache: PipelineCache | None = None,
    ):
        self.config = config or ExperimentConfig()
        if cache is not None:
            self.cache: PipelineCache | None = cache
        elif self.config.cache_enabled:
            self.cache = PipelineCache(
                max_entries=self.config.cache_max_entries,
                cache_dir=self.config.cache_dir,
            )
            self.cache.load()
        else:
            self.cache = None
        self.model = DeepSeekCoderSim(seed=self.config.model_seed)
        self._part1_reports: dict[str, MetricsReport] = {}
        self._part1_populations: dict[str, ProbingSuite] = {}
        self._part2_runs: dict[str, _Part2Run] = {}
        #: aggregated per-shard pipeline stats from the last prefetch()
        self.shard_stats = None
        #: (cell name, wall seconds) per cell from the last prefetch()
        self.shard_cells: list[tuple[str, float]] = []

    def save_cache(self) -> None:
        """Persist the cache's codec namespaces (no-op without cache_dir)."""
        if self.cache is not None:
            self.cache.save()

    def prefetch(self, artifacts: list[str] | None = None, jobs: int | None = None):
        """Compute the underlying matrix cells across worker processes.

        Fans the (part × flavor) cells that ``artifacts`` need (``None``
        = every table and figure) over ``jobs`` processes (default
        ``config.jobs``) and installs the results, so later ``tableN()``
        / ``figN()`` calls are pure composition.  Sequential fallback
        with ``jobs=1``.  See :mod:`repro.experiments.sharding`.
        """
        from repro.experiments import sharding

        return sharding.prefill(self, artifacts=artifacts, jobs=jobs)

    # ------------------------------------------------------------------
    # population construction
    # ------------------------------------------------------------------

    def _build_population(
        self, flavor: str, count: int, languages: tuple[str, ...], weights: dict[int, float], tag: str
    ) -> ProbingSuite:
        generator = CorpusGenerator(
            seed=self.config.seed,
            openmp_max_version=self.config.openmp_max_version,
            step_limit=self.config.step_limit,
            execution_backend=self.config.execution_backend,
            cache=self.cache,
        )
        files = generator.generate(flavor, count, languages=languages)
        suite = TestSuite(f"{flavor}-{tag}", flavor, files)
        prober = NegativeProber(
            # crc32, not hash(): populations must reproduce across
            # processes regardless of PYTHONHASHSEED
            seed=self.config.seed + zlib.crc32(tag.encode()) % 1000,
            issue_weights=dict(weights),
            random_code_valid_fraction=self.config.random_code_valid_fraction,
        )
        return prober.probe(suite)

    def part1_population(self, flavor: str) -> ProbingSuite:
        if flavor not in self._part1_populations:
            if flavor == "acc":
                population = self._build_population(
                    "acc", self.config.part1_acc_count, self.config.part1_acc_languages,
                    PART1_ACC_WEIGHTS, "part1",
                )
            else:
                population = self._build_population(
                    "omp", self.config.part1_omp_count, self.config.part1_omp_languages,
                    PART1_OMP_WEIGHTS, "part1",
                )
            self._part1_populations[flavor] = population
        return self._part1_populations[flavor]

    # ------------------------------------------------------------------
    # Part One: direct LLMJ
    # ------------------------------------------------------------------

    def part1_report(self, flavor: str) -> MetricsReport:
        if flavor not in self._part1_reports:
            population = self.part1_population(flavor)
            judge = DirectLLMJ(self.model, flavor)
            if self.cache is not None:
                judge = CachingDirectJudge(judge, self.cache.judge)
            verdicts = [judge.judge(test).says_valid for test in population]
            evals = EvaluationSet.from_records(list(population), verdicts)
            self._part1_reports[flavor] = MetricsReport.from_evaluations("Direct LLMJ", evals)
            self.save_cache()  # newly computed artifacts reach cache_dir
        return self._part1_reports[flavor]

    # ------------------------------------------------------------------
    # Part Two: pipeline + agent judges
    # ------------------------------------------------------------------

    def part2_run(self, flavor: str, languages: tuple[str, ...] | None = None, tag: str = "part2") -> _Part2Run:
        key = f"{flavor}:{tag}"
        if key in self._part2_runs:
            return self._part2_runs[key]
        count = self.config.part2_count(flavor, tag)
        weights = PART2_ACC_WEIGHTS if flavor == "acc" else PART2_OMP_WEIGHTS
        population = self._build_population(
            flavor, count, languages or self.config.part2_languages, weights, tag
        )
        environment = EnvironmentModel(
            compile_flake_rate=self.config.flake_rates.get(flavor, 0.0),
            seed=self.config.seed,
        )
        pipeline = ValidationPipeline(
            PipelineConfig(
                flavor=flavor,
                judge_kind="direct",
                early_exit=False,  # record-all, per the paper's protocol
                compile_workers=self.config.compile_workers,
                execute_workers=self.config.execute_workers,
                judge_workers=self.config.judge_workers,
                openmp_max_version=self.config.openmp_max_version,
                step_limit=self.config.step_limit,
                model_seed=self.config.model_seed,
                execution_backend=self.config.execution_backend,
            ),
            model=self.model,
            environment=environment,
            cache=self.cache,
        )
        files = list(population)
        result = pipeline.run(files)

        # Retroactive LLMJ-2 pass, batched through the generic scheduler
        # (a judge worker pool instead of a serial loop).
        tasks = [
            JudgeTask(index=i, test=record.test, report=record.tool_report())
            for i, record in enumerate(result.records)
        ]
        judge2_stage = BatchJudgeStage(
            self.model, flavor, kind="indirect",
            workers=self.config.judge_workers, cache=self.cache,
        )
        sweep = run_stage(judge2_stage, tasks)
        sweep.raise_first("LLMJ-2 sweep")
        judged2_by_index = {task.index: task.result for task in sweep.finished}

        llmj2_verdicts: list[bool] = []
        pipeline2_verdicts: list[bool] = []
        llmj1_verdicts: list[bool] = []
        pipeline1_verdicts: list[bool] = []
        for i, record in enumerate(result.records):
            judged2 = judged2_by_index[i]
            llmj2_verdicts.append(judged2.says_valid)
            stage_ok = record.compiled and record.ran_clean
            pipeline2_verdicts.append(stage_ok and judged2.says_valid)
            says1 = record.judge_result.says_valid if record.judge_result else False
            llmj1_verdicts.append(says1)
            pipeline1_verdicts.append(stage_ok and says1)

        ordered = [record.test for record in result.records]
        run = _Part2Run(
            population=population,
            pipeline1=result,
            llmj1_report=MetricsReport.from_evaluations(
                "LLMJ 1", EvaluationSet.from_records(ordered, llmj1_verdicts)
            ),
            llmj2_report=MetricsReport.from_evaluations(
                "LLMJ 2", EvaluationSet.from_records(ordered, llmj2_verdicts)
            ),
            pipeline1_report=MetricsReport.from_evaluations(
                "Pipeline 1", EvaluationSet.from_records(ordered, pipeline1_verdicts)
            ),
            pipeline2_report=MetricsReport.from_evaluations(
                "Pipeline 2", EvaluationSet.from_records(ordered, pipeline2_verdicts)
            ),
        )
        self._part2_runs[key] = run
        self.save_cache()  # newly computed artifacts reach cache_dir
        return run

    # ------------------------------------------------------------------
    # extension beyond the paper: Fortran Part Two (listed as future work)
    # ------------------------------------------------------------------

    def fortran_extension(self) -> TableResult:
        """Run the Part-Two protocol on an OpenACC *Fortran* corpus.

        The paper's conclusion names Fortran incorporation as future
        work; the substrate here supports it, so we run the identical
        record-all pipeline over a Fortran-only population.
        """
        run = self.part2_run("acc", languages=("f90",), tag="fortran-ext")
        text = render_comparison_table(
            run.pipeline1_report, run.llmj1_report,
            "Extension: Fortran Part Two (Pipeline 1 vs LLMJ 1, OpenACC)",
        )
        return TableResult(
            name="fortran_extension",
            title="Extension: Fortran Part Two (OpenACC)",
            text=text,
            reports=[run.pipeline1_report, run.pipeline2_report,
                     run.llmj1_report, run.llmj2_report],
            paper=None,
        )

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------

    def table1(self) -> TableResult:
        report = self.part1_report("acc")
        return TableResult(
            name="table1",
            title="Table I: LLMJ Negative Probing Results for OpenACC",
            text=render_issue_table(report, "Table I: LLMJ Negative Probing Results for OpenACC"),
            reports=[report],
            paper=paperdata.TABLE_I,
        )

    def table2(self) -> TableResult:
        report = self.part1_report("omp")
        return TableResult(
            name="table2",
            title="Table II: LLMJ Negative Probing Results for OpenMP",
            text=render_issue_table(report, "Table II: LLMJ Negative Probing Results for OpenMP"),
            reports=[report],
            paper=paperdata.TABLE_II,
        )

    def table3(self) -> TableResult:
        acc = self.part1_report("acc")
        omp = self.part1_report("omp")
        text = render_overall_table(
            {"OpenACC": [acc], "OpenMP": [omp]},
            "Table III: LLMJ Overall Negative Probing Results",
        )
        return TableResult("table3", "Table III: LLMJ Overall Negative Probing Results",
                           text, [acc, omp], paperdata.TABLE_III)

    def table4(self) -> TableResult:
        run = self.part2_run("acc")
        text = render_comparison_table(
            run.pipeline1_report, run.pipeline2_report,
            "Table IV: Validation Pipeline Results for OpenACC",
        )
        return TableResult("table4", "Table IV: Validation Pipeline Results for OpenACC",
                           text, [run.pipeline1_report, run.pipeline2_report], paperdata.TABLE_IV)

    def table5(self) -> TableResult:
        run = self.part2_run("omp")
        text = render_comparison_table(
            run.pipeline1_report, run.pipeline2_report,
            "Table V: Validation Pipeline Results for OpenMP",
        )
        return TableResult("table5", "Table V: Validation Pipeline Results for OpenMP",
                           text, [run.pipeline1_report, run.pipeline2_report], paperdata.TABLE_V)

    def table6(self) -> TableResult:
        acc = self.part2_run("acc")
        omp = self.part2_run("omp")
        text = render_overall_table(
            {
                "OpenACC": [acc.pipeline1_report, acc.pipeline2_report],
                "OpenMP": [omp.pipeline1_report, omp.pipeline2_report],
            },
            "Table VI: Overall Validation Pipeline Results",
        )
        return TableResult(
            "table6", "Table VI: Overall Validation Pipeline Results", text,
            [acc.pipeline1_report, acc.pipeline2_report, omp.pipeline1_report, omp.pipeline2_report],
            paperdata.TABLE_VI,
        )

    def table7(self) -> TableResult:
        run = self.part2_run("acc")
        text = render_comparison_table(
            run.llmj1_report, run.llmj2_report,
            "Table VII: Agent-Based LLMJ Results for OpenACC",
        )
        return TableResult("table7", "Table VII: Agent-Based LLMJ Results for OpenACC",
                           text, [run.llmj1_report, run.llmj2_report], paperdata.TABLE_VII)

    def table8(self) -> TableResult:
        run = self.part2_run("omp")
        text = render_comparison_table(
            run.llmj1_report, run.llmj2_report,
            "Table VIII: Agent-Based LLMJ Results for OpenMP",
        )
        return TableResult("table8", "Table VIII: Agent-Based LLMJ Results for OpenMP",
                           text, [run.llmj1_report, run.llmj2_report], paperdata.TABLE_VIII)

    def table9(self) -> TableResult:
        acc = self.part2_run("acc")
        omp = self.part2_run("omp")
        text = render_overall_table(
            {
                "OpenACC": [acc.llmj1_report, acc.llmj2_report],
                "OpenMP": [omp.llmj1_report, omp.llmj2_report],
            },
            "Table IX: Overall Agent-Based LLMJ Results",
        )
        return TableResult(
            "table9", "Table IX: Overall Agent-Based LLMJ Results", text,
            [acc.llmj1_report, acc.llmj2_report, omp.llmj1_report, omp.llmj2_report],
            paperdata.TABLE_IX,
        )

    # ------------------------------------------------------------------
    # figures
    # ------------------------------------------------------------------

    def _figure(self, name: str, title: str, reports, include_valid: bool, paper) -> FigureResult:
        from repro.metrics.radar import render_ascii_radar

        series = [radar_series(r, include_valid_axis=include_valid) for r in reports]
        text = f"{title}\n{render_ascii_radar(series)}"
        return FigureResult(name=name, title=title, series=series, text=text, paper=paper)

    def fig3(self) -> FigureResult:
        run = self.part2_run("acc")
        return self._figure(
            "fig3", "Figure 3: Radar Plot for Validation Pipeline Results for OpenACC",
            [run.pipeline1_report, run.pipeline2_report], False, paperdata.FIGURE_3,
        )

    def fig4(self) -> FigureResult:
        run = self.part2_run("omp")
        return self._figure(
            "fig4", "Figure 4: Radar Plot for Validation Pipeline Results for OpenMP",
            [run.pipeline1_report, run.pipeline2_report], False, paperdata.FIGURE_4,
        )

    def fig5(self) -> FigureResult:
        direct = self.part1_report("acc")
        run = self.part2_run("acc")
        return self._figure(
            "fig5", "Figure 5: Radar Plot for LLMJ Results for OpenACC",
            [direct, run.llmj1_report, run.llmj2_report], True, paperdata.FIGURE_5,
        )

    def fig6(self) -> FigureResult:
        direct = self.part1_report("omp")
        run = self.part2_run("omp")
        return self._figure(
            "fig6", "Figure 6: Radar Plot for LLMJ Results for OpenMP",
            [direct, run.llmj1_report, run.llmj2_report], True, paperdata.FIGURE_6,
        )

    # ------------------------------------------------------------------

    def all_tables(self) -> list[TableResult]:
        if self.config.jobs > 1:
            self.prefetch()
        return [
            self.table1(), self.table2(), self.table3(), self.table4(), self.table5(),
            self.table6(), self.table7(), self.table8(), self.table9(),
        ]

    def all_figures(self) -> list[FigureResult]:
        if self.config.jobs > 1:
            self.prefetch()
        return [self.fig3(), self.fig4(), self.fig5(), self.fig6()]
