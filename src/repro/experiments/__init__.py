"""Experiment harness: one entry point per paper table and figure.

:class:`~repro.experiments.runner.Experiments` owns the shared
artifacts (corpora, probing populations, pipeline runs) and exposes
``table1()`` … ``table9()`` and ``fig3()`` … ``fig6()``, each returning
the regenerated artifact plus the paper's published values for
comparison.  ``repro.experiments.paperdata`` holds every published cell
so EXPERIMENTS.md is generated, never hand-edited.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.environment import EnvironmentModel
from repro.experiments.runner import Experiments

__all__ = ["ExperimentConfig", "EnvironmentModel", "Experiments"]
