"""Every published cell of the paper's tables, as structured data.

Used to (a) generate EXPERIMENTS.md's paper-vs-measured comparison and
(b) sanity-check that reproduced results fall in the published bands.
Figures 3-6 plot the same quantities as the tables; their published
axis values are derived here from the table cells.
"""

from __future__ import annotations

from dataclasses import dataclass

ISSUE_ORDER = [0, 1, 2, 3, 4, 5]


@dataclass(frozen=True)
class PaperIssueTable:
    """One per-issue published table (or one judge's half of it)."""

    label: str
    counts: dict[int, int]
    correct: dict[int, int]

    def accuracy(self, issue: int) -> float:
        return self.correct[issue] / self.counts[issue]

    def accuracies(self) -> dict[int, float]:
        return {i: self.accuracy(i) for i in ISSUE_ORDER}


@dataclass(frozen=True)
class PaperOverall:
    label: str
    total_count: int
    total_mistakes: int
    overall_accuracy: float  # fraction
    bias: float


def _table(label: str, counts: list[int], correct: list[int]) -> PaperIssueTable:
    return PaperIssueTable(
        label=label,
        counts=dict(zip(ISSUE_ORDER, counts)),
        correct=dict(zip(ISSUE_ORDER, correct)),
    )


# --------------------------------------------------------------------------
# Part One: direct (tool-less) LLMJ — Tables I-III
# --------------------------------------------------------------------------

TABLE_I = _table(
    "Direct LLMJ (OpenACC)",
    counts=[203, 125, 108, 117, 114, 668],
    correct=[31, 15, 16, 94, 14, 586],
)

TABLE_II = _table(
    "Direct LLMJ (OpenMP)",
    counts=[59, 39, 33, 51, 33, 216],
    correct=[28, 29, 21, 2, 11, 84],
)

TABLE_III = {
    "acc": PaperOverall("Direct LLMJ", 1335, 579, 0.5663, 0.717),
    "omp": PaperOverall("Direct LLMJ", 431, 256, 0.4060, -0.031),
}

# --------------------------------------------------------------------------
# Part Two: validation pipeline — Tables IV-VI
# --------------------------------------------------------------------------

TABLE_IV = {
    "Pipeline 1": _table(
        "Pipeline 1 (OpenACC)",
        counts=[272, 146, 151, 146, 176, 891],
        correct=[250, 146, 151, 146, 38, 704],
    ),
    "Pipeline 2": _table(
        "Pipeline 2 (OpenACC)",
        counts=[272, 146, 151, 146, 176, 891],
        correct=[251, 146, 151, 146, 53, 627],
    ),
}

TABLE_V = {
    "Pipeline 1": _table(
        "Pipeline 1 (OpenMP)",
        counts=[49, 28, 26, 20, 25, 148],
        correct=[47, 28, 26, 14, 23, 136],
    ),
    "Pipeline 2": _table(
        "Pipeline 2 (OpenMP)",
        counts=[49, 28, 26, 20, 25, 148],
        correct=[46, 28, 26, 17, 23, 138],
    ),
}

TABLE_VI = {
    "acc": [
        PaperOverall("Pipeline 1", 1782, 347, 0.8053, -0.078),
        PaperOverall("Pipeline 2", 1782, 408, 0.7710, -0.294),
    ],
    "omp": [
        PaperOverall("Pipeline 1", 296, 22, 0.9257, -0.091),
        PaperOverall("Pipeline 2", 296, 18, 0.9392, -0.111),
    ],
}

# --------------------------------------------------------------------------
# Part Two: agent-based LLMJ — Tables VII-IX
# --------------------------------------------------------------------------

TABLE_VII = {
    "LLMJ 1": _table(
        "LLMJ 1 (OpenACC)",
        counts=[272, 146, 151, 146, 176, 891],
        correct=[182, 111, 128, 142, 26, 819],
    ),
    "LLMJ 2": _table(
        "LLMJ 2 (OpenACC)",
        counts=[272, 146, 151, 146, 176, 891],
        correct=[224, 81, 126, 146, 47, 701],
    ),
}

TABLE_VIII = {
    "LLMJ 1": _table(
        "LLMJ 1 (OpenMP)",
        counts=[49, 28, 26, 20, 25, 148],
        correct=[23, 16, 18, 13, 18, 137],
    ),
    "LLMJ 2": _table(
        "LLMJ 2 (OpenMP)",
        counts=[49, 28, 26, 20, 25, 148],
        correct=[22, 13, 15, 17, 12, 142],
    ),
}

TABLE_IX = {
    "acc": [
        PaperOverall("LLMJ 1", 1782, 374, 0.7901, 0.615),
        PaperOverall("LLMJ 2", 1782, 457, 0.7435, 0.168),
    ],
    "omp": [
        PaperOverall("LLMJ 1", 296, 71, 0.7601, 0.690),
        PaperOverall("LLMJ 2", 296, 75, 0.7466, 0.840),
    ],
}

# --------------------------------------------------------------------------
# Figures 3-6: radar axes derived from the tables
# --------------------------------------------------------------------------

RADAR_AXES = ["model errors", "improper syntax", "no directives", "test logic"]
RADAR_AXES_WITH_VALID = RADAR_AXES + ["valid tests"]


def _radar_from_table(table: PaperIssueTable, include_valid: bool) -> dict[str, float]:
    groups = {
        "model errors": (0,),
        "improper syntax": (1, 2),
        "no directives": (3,),
        "test logic": (4,),
    }
    if include_valid:
        groups["valid tests"] = (5,)
    out: dict[str, float] = {}
    for axis, issues in groups.items():
        total = sum(table.counts[i] for i in issues)
        correct = sum(table.correct[i] for i in issues)
        out[axis] = correct / total
    return out


FIGURE_3 = {label: _radar_from_table(t, False) for label, t in TABLE_IV.items()}
FIGURE_4 = {label: _radar_from_table(t, False) for label, t in TABLE_V.items()}
FIGURE_5 = {
    "Direct LLMJ": _radar_from_table(TABLE_I, True),
    "LLMJ 1": _radar_from_table(TABLE_VII["LLMJ 1"], True),
    "LLMJ 2": _radar_from_table(TABLE_VII["LLMJ 2"], True),
}
FIGURE_6 = {
    "Direct LLMJ": _radar_from_table(TABLE_II, True),
    "LLMJ 1": _radar_from_table(TABLE_VIII["LLMJ 1"], True),
    "LLMJ 2": _radar_from_table(TABLE_VIII["LLMJ 2"], True),
}
