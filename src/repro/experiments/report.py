"""EXPERIMENTS.md generation: paper-vs-measured for every artifact.

The report is generated, never hand-edited: every published cell comes
from :mod:`repro.experiments.paperdata`, every measured cell from a
fresh :class:`~repro.experiments.runner.Experiments` run.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import paperdata
from repro.experiments.paperdata import PaperIssueTable, PaperOverall
from repro.experiments.runner import Experiments, FigureResult, TableResult
from repro.metrics.accuracy import MetricsReport
from repro.probing.mutators import ISSUE_DESCRIPTIONS

_ISSUE_SHORT = {
    0: "removed alloc / swapped directive",
    1: "removed opening bracket",
    2: "undeclared variable",
    3: "random non-directive code",
    4: "removed last bracketed section",
    5: "no issue",
}


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    out.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(out)


def _issue_comparison(measured: MetricsReport, paper: PaperIssueTable) -> str:
    rows = []
    for issue in range(6):
        row = measured.row_for(issue)
        if row is None:
            continue
        paper_acc = paper.accuracy(issue)
        delta = row.accuracy - paper_acc
        rows.append(
            [
                _ISSUE_SHORT[issue],
                f"{paper_acc:.0%}",
                f"{row.accuracy:.0%}",
                f"{delta:+.0%}",
            ]
        )
    return _md_table(["issue", "paper", "measured", "delta"], rows)


def _overall_comparison(measured: MetricsReport, paper: PaperOverall) -> list[str]:
    return [
        f"overall accuracy: paper {paper.overall_accuracy:.2%} → measured "
        f"{measured.overall_accuracy:.2%}",
        f"bias: paper {paper.bias:+.3f} → measured {measured.bias:+.3f}",
    ]


def _table_section(result: TableResult) -> str:
    lines = [f"## {result.title}", ""]
    paper = result.paper
    if isinstance(paper, PaperIssueTable):
        lines.append(_issue_comparison(result.reports[0], paper))
    elif isinstance(paper, dict) and all(isinstance(v, PaperIssueTable) for v in paper.values()):
        for report, (label, table) in zip(result.reports, paper.items()):
            lines.append(f"**{label}**")
            lines.append("")
            lines.append(_issue_comparison(report, table))
            lines.append("")
    elif isinstance(paper, dict):
        # overall tables: {"acc": [PaperOverall, ...], "omp": [...]}
        idx = 0
        for flavor, entries in paper.items():
            entries = entries if isinstance(entries, list) else [entries]
            name = {"acc": "OpenACC", "omp": "OpenMP"}.get(flavor, flavor)
            for entry in entries:
                measured = result.reports[idx]
                idx += 1
                lines.append(f"**{name} — {entry.label}**")
                lines.extend(f"- {line}" for line in _overall_comparison(measured, entry))
                lines.append("")
    lines.append("")
    lines.append("Measured table:")
    lines.append("")
    lines.append("```")
    lines.append(result.text)
    lines.append("```")
    return "\n".join(lines)


def _figure_section(result: FigureResult) -> str:
    lines = [f"## {result.title}", ""]
    headers = ["series", "axis", "paper", "measured", "delta"]
    rows: list[list[str]] = []
    for series in result.series:
        paper_series = _match_paper_series(result.paper, series.label)
        for axis, value in zip(series.axes, series.values):
            paper_value = paper_series.get(axis) if paper_series else None
            rows.append(
                [
                    series.label,
                    axis,
                    f"{paper_value:.0%}" if paper_value is not None else "-",
                    f"{value:.0%}",
                    f"{value - paper_value:+.0%}" if paper_value is not None else "-",
                ]
            )
    lines.append(_md_table(headers, rows))
    lines.append("")
    lines.append("```")
    lines.append(result.text)
    lines.append("```")
    return "\n".join(lines)


def _match_paper_series(paper: dict, label: str) -> dict | None:
    if label in paper:
        return paper[label]
    for key, value in paper.items():
        if key.lower().startswith(label.lower()[:6]) or label.lower().startswith(key.lower()[:6]):
            return value
    return None


def build_experiments_md(exp: Experiments) -> str:
    """Render the full paper-vs-measured report."""
    cfg = exp.config
    header = f"""# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure of *LLM4VV: Exploring
LLM-as-a-Judge for Validation and Verification Testsuites*
(arXiv:2408.11729).

Run configuration: scale = **{cfg.scale}**, corpus seed = {cfg.seed},
model seed = {cfg.model_seed}, OpenMP max version = {cfg.openmp_max_version},
toolchain flake rates = {cfg.flake_rates}.

Reading guide: absolute accuracies depend on the frozen capability
profile of the simulated judge (DESIGN.md §5); the claims to check are
the *shapes* — which judge wins per issue class, where the pipeline is
near-perfect (compiler-detectable mutations) and where it stays weak
(removed last bracketed section), the direction and rough magnitude of
each bias, and OpenMP-vs-OpenACC orderings.  Population sizes below
differ from the paper when scale != "paper"; accuracies, not counts,
are the comparison targets.  Known residual deviations are listed at
the bottom.

"""
    sections = [header]
    for result in exp.all_tables():
        sections.append(_table_section(result))
        sections.append("")
    for figure in exp.all_figures():
        sections.append(_figure_section(figure))
        sections.append("")
    sections.append(_residuals_section())
    return "\n".join(sections)


def _residuals_section() -> str:
    return """## Known residual deviations

* **Pipeline accuracy on compile-detectable mutations (issues 0-2) is
  ~100% here vs 92-100% in the paper.**  Our front-end is fully
  conforming by construction; the paper's real toolchains occasionally
  accepted mutants (e.g. a directive swap that happened to form valid
  syntax for that compiler).
* **OpenMP direct-judge accuracy on issues 0 and 4 runs ~10-25 points
  above the paper's 47%/33%.**  The published cells sit *below* the
  same judge's false-alarm floor on valid files (61%), which a
  per-signal detection model cannot reproduce exactly; the shape
  (near-coin-flip judging of OpenMP code without tools) is preserved.
* **OpenMP pipeline accuracy on "removed last bracketed section" is
  ~55-70% here vs the paper's 92%, and the OpenMP pipelines' bias comes
  out positive rather than ~0.**  In the paper's OpenMP corpus most
  issue-4 mutants evidently failed compile or run (92% caught while the
  same judges alone caught 48-72%); our mutator always removes a
  complete block (the final self-check), which keeps every mutant
  compilable, so only the judge can catch it.  The remaining mistakes
  are therefore permissive, flipping the small bias positive.  The
  OpenACC side — where the paper's own pipeline also failed to catch
  these (22-30%) — matches closely.
* **Counts differ at non-paper scales** (the issue *mix* is preserved);
  at scale="paper" populations match the published totals (1335/431
  Part One, 1782/296 Part Two).
* The ``trust_environment_error`` mechanism (DESIGN.md §5) reproduces
  the paper's otherwise-contradictory pair "pipeline 79% vs LLMJ-alone
  92% on valid OpenACC files": valid files rejected by a flaky real
  toolchain fail the pipeline but are still (correctly) passed by the
  judge reading the same tool output.
"""


def write_experiments_md(exp: Experiments, path: str | Path = "EXPERIMENTS.md") -> Path:
    out = Path(path)
    out.write_text(build_experiments_md(exp))
    return out


ISSUE_DESCRIPTIONS_USED = ISSUE_DESCRIPTIONS  # re-export for doc tooling
PAPERDATA_USED = paperdata  # keep the provenance import explicit
