"""High-level validation API over the pipeline + judge stack.

Typical use::

    from repro import TestsuiteValidator

    validator = TestsuiteValidator(flavor="acc")
    report = validator.validate_sources({"vecadd.c": source_text})
    for judged in report.files:
        print(judged.name, judged.verdict, judged.reason)

The validator runs the paper's full method: compile, execute, then an
agent-based LLM judgment over the survivors (early-exit), and returns
structured verdicts with the evidence trail for each file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.driver import testfile_language
from repro.corpus.generator import TestFile
from repro.llm.model import DeepSeekCoderSim
from repro.pipeline.engine import PipelineConfig, PipelineRecord, ValidationPipeline
from repro.pipeline.stats import PipelineStats


@dataclass(frozen=True)
class JudgedFile:
    """The validator's verdict on one candidate test."""

    name: str
    verdict: str  # 'valid' | 'invalid'
    stage: str  # 'compile' | 'execute' | 'judge'
    reason: str
    compile_rc: int
    run_rc: int | None
    judge_response: str | None = None

    @property
    def is_valid(self) -> bool:
        return self.verdict == "valid"


@dataclass
class ValidationReport:
    """All verdicts for one validation run plus pipeline statistics."""

    files: list[JudgedFile] = field(default_factory=list)
    stats: PipelineStats | None = None

    @property
    def valid_files(self) -> list[JudgedFile]:
        return [f for f in self.files if f.is_valid]

    @property
    def invalid_files(self) -> list[JudgedFile]:
        return [f for f in self.files if not f.is_valid]

    def verdict_for(self, name: str) -> JudgedFile | None:
        for judged in self.files:
            if judged.name == name:
                return judged
        return None

    def summary(self) -> dict[str, object]:
        return {
            "total": len(self.files),
            "valid": len(self.valid_files),
            "invalid": len(self.invalid_files),
            "by_stage": {
                stage: sum(1 for f in self.invalid_files if f.stage == stage)
                for stage in ("compile", "execute", "judge")
            },
        }


class TestsuiteValidator:
    """Validate candidate compiler tests with the paper's full method.

    (``__test__ = False``: not a pytest collectable despite the name.)

    Parameters
    ----------
    flavor:
        ``'acc'`` or ``'omp'`` — which programming model's toolchain
        and judge to use.
    judge_kind:
        ``'direct'`` (LLMJ 1 prompting) or ``'indirect'`` (LLMJ 2).
    early_exit:
        Skip the (expensive) judge for files that already failed
        compile or execute.  On by default, as in §III-C.
    workers:
        Worker count applied to the compile and execute pools.
    cache:
        Optional :class:`repro.cache.bundle.PipelineCache`; repeated
        validations of unchanged sources reuse compile/run/judge work.
    """

    __test__ = False

    def __init__(
        self,
        flavor: str = "acc",
        judge_kind: str = "direct",
        early_exit: bool = True,
        workers: int = 2,
        judge_workers: int = 1,
        model_seed: int = 20240822,
        openmp_max_version: float = 4.5,
        model: DeepSeekCoderSim | None = None,
        cache=None,
        execution_backend: str = "closure",
    ):
        self.config = PipelineConfig(
            flavor=flavor,
            judge_kind=judge_kind,
            early_exit=early_exit,
            compile_workers=workers,
            execute_workers=workers,
            judge_workers=judge_workers,
            execution_backend=execution_backend,
            model_seed=model_seed,
            openmp_max_version=openmp_max_version,
        )
        self.pipeline = ValidationPipeline(self.config, model=model, cache=cache)

    # ------------------------------------------------------------------

    def validate(self, tests: list[TestFile]) -> ValidationReport:
        """Validate prepared :class:`TestFile` objects."""
        result = self.pipeline.run(tests)
        report = ValidationReport(stats=result.stats)
        for record in result.records:
            report.files.append(self._to_judged(record))
        return report

    def validate_sources(self, sources: dict[str, str]) -> ValidationReport:
        """Validate a mapping of filename → source text."""
        tests = [
            TestFile(
                name=name,
                language=testfile_language(name),
                model=self.config.flavor,
                source=source,
                template="user",
            )
            for name, source in sources.items()
        ]
        return self.validate(tests)

    # ------------------------------------------------------------------

    def _to_judged(self, record: PipelineRecord) -> JudgedFile:
        if not record.compiled:
            first = record.compile_stderr.splitlines()
            return JudgedFile(
                name=record.test.name,
                verdict="invalid",
                stage="compile",
                reason=first[0] if first else "compilation failed",
                compile_rc=record.compile_rc,
                run_rc=record.run_rc,
            )
        if record.run_rc not in (0, None) or (record.run_rc is None and record.judge_result is None):
            return JudgedFile(
                name=record.test.name,
                verdict="invalid",
                stage="execute",
                reason=f"program exited with return code {record.run_rc}",
                compile_rc=record.compile_rc,
                run_rc=record.run_rc,
            )
        judged = record.judge_result
        if judged is None:
            # early-exit pipelines only reach here for failed stages
            return JudgedFile(
                name=record.test.name,
                verdict="invalid",
                stage="execute",
                reason="did not reach the judge stage",
                compile_rc=record.compile_rc,
                run_rc=record.run_rc,
            )
        verdict = "valid" if judged.says_valid else "invalid"
        reason = (
            "the judge deemed the test valid"
            if judged.says_valid
            else _extract_reason(judged.response)
        )
        return JudgedFile(
            name=record.test.name,
            verdict=verdict,
            stage="judge",
            reason=reason,
            compile_rc=record.compile_rc,
            run_rc=record.run_rc,
            judge_response=judged.response,
        )


def _extract_reason(response: str) -> str:
    import re

    match = re.search(r"because (.+?)(?:\.|$)", response)
    if match:
        return match.group(1)
    return "the judge deemed the test invalid"
