"""The paper's primary contribution as a user-facing API.

:class:`TestsuiteValidator` wraps the full method — staged validation
pipeline with an agent-based LLM judge — behind the call a downstream
test-suite maintainer actually wants: *"here are candidate tests, tell
me which are valid."*
"""

from repro.core.atomicio import atomic_write_bytes, atomic_write_json, atomic_write_text
from repro.core.validator import JudgedFile, TestsuiteValidator, ValidationReport

__all__ = [
    "TestsuiteValidator",
    "ValidationReport",
    "JudgedFile",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
]
