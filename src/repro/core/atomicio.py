"""Atomic file writes: the one sanctioned way to persist a JSON artifact.

Extracted from the cache store's save path (PR 1) because every durable
artifact in the repo now depends on the same two-step discipline:

1. write the full payload to a **writer-unique** tmp file next to the
   target (``<name>.<pid>.<n>.tmp`` — concurrent processes differ by
   pid, concurrent threads by the counter, so writers never collide), then
2. ``os.replace`` it over the target — atomic on POSIX, so a reader (or
   a process that resumes after a kill) sees either the old complete
   file or the new complete file, never a torn one.

Campaign checkpoints, experiment cell pickles, the job journal, suite
manifests and ``BENCH_*.json`` all write through here.  Each call may
name a ``fault_tag``; the fault-injection harness can then kill the
process *between* the tmp write and the rename (point
``atomic-write:<tag>``), which is exactly the window a torn-write bug
would hide in — recovery tests prove the previous file survives intact.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
from pathlib import Path
from typing import Union

from repro.testing.faultinject import fault_point

PathLike = Union[str, Path]

#: disambiguates concurrent writers *within* one process (threads)
_counter = itertools.count()


def atomic_write_bytes(path: PathLike, payload: bytes, fault_tag: str | None = None) -> Path:
    """Atomically replace *path* with *payload*; create parent dirs."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{next(_counter)}.tmp")
    try:
        tmp.write_bytes(payload)
        if fault_tag is not None:
            fault_point(f"atomic-write:{fault_tag}")
        tmp.replace(path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp.unlink()
        raise
    return path


def atomic_write_text(path: PathLike, text: str, fault_tag: str | None = None) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"), fault_tag=fault_tag)


def atomic_write_json(
    path: PathLike,
    payload: object,
    *,
    indent: int | None = None,
    sort_keys: bool = False,
    fault_tag: str | None = None,
) -> Path:
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    if indent is not None:
        text += "\n"
    return atomic_write_text(path, text, fault_tag=fault_tag)
