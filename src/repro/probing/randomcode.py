"""Random non-directive code generation (negative-probing issue 3).

The paper replaces a file's contents with "randomly generated
non-OpenACC & OpenMP code".  The generator draws small programs from a
mini-grammar of plain C (functions, loops, arithmetic, prints) with
**no** directives at all.  A ``valid_fraction`` parameter controls how
many of the generated files are themselves compilable, mirroring
reality: random code sometimes compiles and runs cleanly, in which case
only the judge stage can notice it is not a directive test at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_VAR_NAMES = ["val", "item", "total", "count", "acc", "tmp", "num", "res", "idx", "buf"]
_FN_NAMES = ["process", "transform", "combine", "compute", "mix", "fold"]


@dataclass
class RandomCodeGenerator:
    """Seeded generator of plain (non-directive) C programs."""

    rng: random.Random
    valid_fraction: float = 0.6

    @classmethod
    def with_seed(cls, seed: int, valid_fraction: float = 0.6) -> "RandomCodeGenerator":
        return cls(rng=random.Random(seed), valid_fraction=valid_fraction)

    # ------------------------------------------------------------------

    def generate(self) -> str:
        """One random program; compilable with probability valid_fraction."""
        source = self._generate_valid()
        if self.rng.random() >= self.valid_fraction:
            source = self._corrupt(source)
        return source

    def generate_fortran(self) -> str:
        """Random plain Fortran (no directives)."""
        n = self.rng.randint(10, 60)
        k = self.rng.randint(2, 9)
        body = f"""program noise
  implicit none
  integer :: i
  real(8) :: v({n})
  real(8) :: s
  s = 0.0
  do i = 1, {n}
    v(i) = i * {k}.0
    s = s + v(i)
  end do
  print *, s
end program noise
"""
        if self.rng.random() >= self.valid_fraction:
            body = body.replace("end do\n", "", 1)
        return body

    # ------------------------------------------------------------------

    def _generate_valid(self) -> str:
        rng = self.rng
        fn_name = rng.choice(_FN_NAMES)
        v1, v2, v3 = rng.sample(_VAR_NAMES, 3)
        n = rng.randint(8, 64)
        k1, k2 = rng.randint(2, 9), rng.randint(1, 5)
        op = rng.choice(["+", "*", "-"])
        helper_kind = rng.randrange(3)
        if helper_kind == 0:
            helper = f"""int {fn_name}(int {v1}, int {v2}) {{
    int {v3} = {v1} {op} {v2};
    if ({v3} < 0) {{
        {v3} = -{v3};
    }}
    return {v3};
}}
"""
            call = f"{fn_name}(i, {k1})"
        elif helper_kind == 1:
            helper = f"""int {fn_name}(int {v1}) {{
    int {v3} = 0;
    for (int j = 0; j < {v1}; j++) {{
        {v3} += j % {k1 + 1};
    }}
    return {v3};
}}
"""
            call = f"{fn_name}(i)"
        else:
            helper = f"""int {fn_name}(int {v1}) {{
    if ({v1} <= 1) {{
        return 1;
    }}
    return {v1} * {fn_name}({v1} - 2);
}}
"""
            call = f"{fn_name}(i % 9)"
        main_kind = rng.randrange(3)
        if main_kind == 0:
            main_body = f"""    int table[{n}];
    int sum = 0;
    for (int i = 0; i < {n}; i++) {{
        table[i] = {call};
        sum += table[i];
    }}
    printf("checksum: %d\\n", sum);"""
        elif main_kind == 1:
            main_body = f"""    int best = 0;
    for (int i = 0; i < {n}; i++) {{
        int cur = {call} + {k2};
        if (cur > best) {{
            best = cur;
        }}
    }}
    printf("best: %d\\n", best);"""
        else:
            main_body = f"""    double series = 0.0;
    for (int i = 1; i <= {n}; i++) {{
        series += 1.0 / (double)({call} + 1);
    }}
    printf("series: %f\\n", series);"""
        return f"""#include <stdio.h>
#include <stdlib.h>

{helper}
int main() {{
{main_body}
    return 0;
}}
"""

    def _corrupt(self, source: str) -> str:
        """Break the random program so it does not compile."""
        rng = self.rng
        kind = rng.randrange(4)
        if kind == 0:
            # drop one opening brace
            idx = source.find("{", source.find("main"))
            if idx >= 0:
                return source[:idx] + source[idx + 1:]
        if kind == 1:
            # reference a function that does not exist
            return source.replace("return 0;", "return finalize_all();", 1)
        if kind == 2:
            # stray token soup in the middle
            lines = source.splitlines()
            pos = rng.randrange(max(1, len(lines) - 2))
            lines.insert(pos + 1, "@@ lorem ipsum $$ 12 34 :::")
            return "\n".join(lines) + "\n"
        # truncate the tail
        cut = rng.randint(len(source) // 2, len(source) - 10)
        return source[:cut]
