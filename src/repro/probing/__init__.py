"""Negative probing: controlled corruption of valid compiler tests.

Implements the paper's five issue types (§III-A):

* **0** — removed memory allocation / directive swapped for a
  syntactically incorrect one;
* **1** — removed an opening bracket;
* **2** — added use of an undeclared variable;
* **3** — file replaced with randomly generated non-directive code;
* **4** — removed the last bracketed section of code;
* **5** — no change (the valid control group).

:class:`~repro.probing.prober.NegativeProber` applies the paper's
protocol: split a suite in half, mutate one half (issues drawn
uniformly), keep the other half unchanged, and tag every file with its
issue id as ground truth.
"""

from repro.probing.mutators import ISSUE_DESCRIPTIONS, MutationError, Mutator, mutator_for_issue
from repro.probing.prober import NegativeProber, ProbingSuite
from repro.probing.randomcode import RandomCodeGenerator

__all__ = [
    "ISSUE_DESCRIPTIONS",
    "MutationError",
    "Mutator",
    "mutator_for_issue",
    "NegativeProber",
    "ProbingSuite",
    "RandomCodeGenerator",
]
