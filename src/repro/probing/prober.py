"""The negative-probing protocol (paper §III-A).

Split a suite in half at random; mutate one half with issues drawn
from a weighted distribution; leave the other half unchanged (issue 5).
The result is a :class:`ProbingSuite` carrying ground-truth validity
for every file, which the metrics layer scores judges against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.generator import TestFile
from repro.corpus.suite import TestSuite
from repro.probing.mutators import MutationError, mutator_for_issue

#: Issue mix approximating the per-issue counts in the paper's tables
#: (issue 0 is over-represented because it has two sub-strategies).
DEFAULT_ISSUE_WEIGHTS: dict[int, float] = {0: 0.30, 1: 0.18, 2: 0.16, 3: 0.18, 4: 0.18}


@dataclass
class ProbingSuite:
    """A probed population: mutated + unchanged files with ground truth."""

    name: str
    model: str
    files: list[TestFile] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.files)

    def __iter__(self):
        return iter(self.files)

    def by_issue(self, issue: int) -> list[TestFile]:
        if issue == 5:
            return [f for f in self.files if f.issue in (None, 5)]
        return [f for f in self.files if f.issue == issue]

    def issue_counts(self) -> dict[int, int]:
        counts = {i: 0 for i in range(6)}
        for f in self.files:
            counts[5 if f.issue in (None, 5) else f.issue] += 1
        return counts

    def ground_truth(self) -> list[bool]:
        """Per-file validity (True = valid), paper's verification system."""
        return [f.is_valid for f in self.files]


@dataclass
class NegativeProber:
    """Applies the split-and-mutate protocol with a seeded RNG."""

    seed: int = 42
    issue_weights: dict[int, float] = field(default_factory=lambda: dict(DEFAULT_ISSUE_WEIGHTS))
    random_code_valid_fraction: float = 0.6

    def probe(self, suite: TestSuite) -> ProbingSuite:
        """Produce the probing population from a valid suite."""
        rng = random.Random(self.seed)
        to_mutate, unchanged = suite.split_half(seed=rng.randrange(1 << 30))
        issues = list(self.issue_weights.keys())
        weights = [self.issue_weights[i] for i in issues]
        out: list[TestFile] = []
        for test in to_mutate:
            issue = rng.choices(issues, weights=weights, k=1)[0]
            out.append(self._apply(test, issue, rng))
        for test in unchanged:
            out.append(test.with_issue(5))
        rng.shuffle(out)
        return ProbingSuite(name=f"{suite.name}-probed", model=suite.model, files=out)

    def _apply(self, test: TestFile, issue: int, rng: random.Random) -> TestFile:
        """Mutate with fallback: if an issue is inapplicable, try others."""
        order = [issue] + [i for i in (3, 4, 1, 2, 0) if i != issue]
        for candidate in order:
            mutator = mutator_for_issue(candidate, self.random_code_valid_fraction)
            try:
                return mutator.mutate(test, rng)
            except MutationError:
                continue
        raise MutationError(f"no mutation applicable to {test.name}")
