"""Mutation operators implementing the paper's five issue types.

Each mutator takes valid source text and returns a corrupted variant.
The operators are deliberately faithful to how the defects behave under
a real toolchain:

* issues 0a (directive swap), 1 (opening bracket) and 2 (undeclared
  variable) are always compile errors;
* issue 0b (removed allocation) compiles but faults at run time;
* issue 3 (random non-directive code) may or may not compile — when it
  does, only the judge can flag it;
* issue 4 (removed last bracketed section) usually *keeps compiling*:
  deleting a complete ``{...}`` block (typically the final self-check)
  leaves balanced, runnable code whose only defect is missing test
  logic — exactly the failure mode the paper found hardest to catch.
"""

from __future__ import annotations

import random
import re

from repro.corpus.generator import TestFile
from repro.probing.randomcode import RandomCodeGenerator

ISSUE_DESCRIPTIONS = {
    0: "Removed memory allocation / swapped directive with a syntactically incorrect directive",
    1: "Removed an opening bracket",
    2: "Added use of undeclared variable",
    3: "Replaced file with randomly generated non-directive code",
    4: "Removed last bracketed section of code",
    5: "No issue",
}


class MutationError(Exception):
    """The mutation is not applicable to this source file."""


class Mutator:
    """Base class: apply one issue type to a test file."""

    issue: int = -1

    def mutate(self, test: TestFile, rng: random.Random) -> TestFile:
        if test.language == "f90":
            mutated = self.mutate_fortran(test.source, rng)
        else:
            mutated = self.mutate_c(test.source, rng)
        return test.with_issue(self.issue, mutated)

    def mutate_c(self, source: str, rng: random.Random) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def mutate_fortran(self, source: str, rng: random.Random) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Issue 0 — removed allocation / swapped directive
# ---------------------------------------------------------------------------

_MISSPELLINGS = {
    "parallel": ["paralel", "parallell", "parrallel", "parallel_for"],
    "kernels": ["kernel", "kernells", "kernles"],
    "serial": ["serail", "seriall"],
    "loop": ["lopo", "looop", "lop"],
    "data": ["dta", "datta", "dataa"],
    "target": ["traget", "targit", "targett"],
    "teams": ["teems", "taems"],
    "distribute": ["distrbute", "distributee", "distribut"],
    "for": ["fore", "forr"],
    "simd": ["smid", "simdd"],
    "atomic": ["atomicc", "atmoic"],
    "update": ["updte", "updatee"],
    "enter": ["entr", "enterr"],
    "exit": ["exitt", "exot"],
    "sections": ["sectoins", "sektions"],
    "single": ["signle", "singel"],
    "critical": ["critcal", "crtical"],
    "task": ["tsk", "taks"],
    "barrier": ["barier", "barrrier"],
    "master": ["mater", "mastre"],
    "wait": ["wiat", "waitt"],
}

_MALLOC_RE = re.compile(
    r"=\s*\([A-Za-z_][\w ]*\*+\s*\)\s*malloc\s*\([^;]*\)\s*;"
)


class DirectiveOrAllocationMutator(Mutator):
    """Issue 0: drop a malloc initializer or corrupt a directive word."""

    issue = 0

    def mutate_c(self, source: str, rng: random.Random) -> str:
        has_malloc = _MALLOC_RE.search(source) is not None
        pragmas = _pragma_lines(source)
        strategies = []
        if has_malloc:
            strategies.append("alloc")
        if pragmas:
            strategies.append("directive")
        if not strategies:
            raise MutationError("no malloc and no directive to corrupt")
        strategy = rng.choice(strategies)
        if strategy == "alloc":
            # 'double *a = (double*)malloc(...);' -> 'double *a;'
            return _MALLOC_RE.sub(";", source, count=1)
        return _corrupt_pragma(source, pragmas, rng)

    def mutate_fortran(self, source: str, rng: random.Random) -> str:
        lines = source.splitlines()
        candidates = [i for i, line in enumerate(lines) if line.strip().lower().startswith("!$")]
        if not candidates:
            raise MutationError("no Fortran directive to corrupt")
        idx = rng.choice(candidates)
        lines[idx] = _misspell_words(lines[idx], rng)
        return "\n".join(lines) + "\n"


def _pragma_lines(source: str) -> list[int]:
    return [
        i
        for i, line in enumerate(source.splitlines())
        if re.match(r"\s*#pragma\s+(acc|omp)\b", line)
    ]


def _corrupt_pragma(source: str, pragma_line_indices: list[int], rng: random.Random) -> str:
    lines = source.splitlines()
    idx = rng.choice(pragma_line_indices)
    lines[idx] = _misspell_words(lines[idx], rng)
    return "\n".join(lines) + "\n"


def _misspell_words(line: str, rng: random.Random) -> str:
    words = [w for w in _MISSPELLINGS if re.search(rf"\b{w}\b", line)]
    if not words:
        # no known word: corrupt the model token itself (acc -> ac)
        return re.sub(r"\b(acc|omp)\b", lambda m: m.group(0)[:-1], line, count=1)
    word = rng.choice(words)
    replacement = rng.choice(_MISSPELLINGS[word])
    return re.sub(rf"\b{word}\b", replacement, line, count=1)


# ---------------------------------------------------------------------------
# Issue 1 — removed an opening bracket
# ---------------------------------------------------------------------------


class OpeningBracketMutator(Mutator):
    """Issue 1: delete one '{' (C) or one 'do' header line (Fortran)."""

    issue = 1

    def mutate_c(self, source: str, rng: random.Random) -> str:
        positions = [m.start() for m in re.finditer(r"\{", source)]
        if not positions:
            raise MutationError("no opening bracket present")
        pos = rng.choice(positions)
        return source[:pos] + source[pos + 1:]

    def mutate_fortran(self, source: str, rng: random.Random) -> str:
        lines = source.splitlines()
        openers = [
            i
            for i, line in enumerate(lines)
            if re.match(r"\s*do\s+\w+\s*=", line, re.IGNORECASE)
            or re.match(r"\s*if\s*\(.*\)\s*then\s*$", line, re.IGNORECASE)
        ]
        if not openers:
            raise MutationError("no block opener present")
        del lines[rng.choice(openers)]
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Issue 2 — added use of undeclared variable
# ---------------------------------------------------------------------------

_UNDELARED_NAMES = ["chk_total", "result_code", "scratch_v", "norm_val", "tmp_accum"]


class UndeclaredVariableMutator(Mutator):
    """Issue 2: insert a statement that uses a never-declared variable."""

    issue = 2

    def mutate_c(self, source: str, rng: random.Random) -> str:
        lines = source.splitlines()
        # insertion points: after a simple statement inside a function body
        spots = [
            i
            for i, line in enumerate(lines)
            if line.rstrip().endswith(";") and not line.lstrip().startswith("#")
            and "return" not in line
        ]
        if not spots:
            raise MutationError("no statement to anchor the undeclared use")
        idx = rng.choice(spots)
        name = rng.choice(_UNDELARED_NAMES)
        indent = re.match(r"\s*", lines[idx]).group(0)
        form = rng.randrange(3)
        if form == 0:
            inserted = f"{indent}{name} = {name} + 1;"
        elif form == 1:
            inserted = f"{indent}{name} += {rng.randint(1, 9)};"
        else:
            inserted = f"{indent}if ({name} > 0) {{ {name} = 0; }}"
        lines.insert(idx + 1, inserted)
        return "\n".join(lines) + "\n"

    def mutate_fortran(self, source: str, rng: random.Random) -> str:
        lines = source.splitlines()
        spots = [
            i
            for i, line in enumerate(lines)
            if re.match(r"\s*\w+(\(\w+\))?\s*=", line) and "::" not in line
        ]
        if not spots:
            raise MutationError("no assignment to anchor the undeclared use")
        idx = rng.choice(spots)
        name = rng.choice(_UNDELARED_NAMES)
        indent = re.match(r"\s*", lines[idx]).group(0)
        lines.insert(idx + 1, f"{indent}{name} = {name} + 1.0")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Issue 3 — replaced with random non-directive code
# ---------------------------------------------------------------------------


class RandomReplacementMutator(Mutator):
    """Issue 3: replace the whole file with random plain code."""

    issue = 3

    def __init__(self, valid_fraction: float = 0.6):
        self.valid_fraction = valid_fraction

    def mutate(self, test: TestFile, rng: random.Random) -> TestFile:
        generator = RandomCodeGenerator(rng=rng, valid_fraction=self.valid_fraction)
        if test.language == "f90":
            return test.with_issue(self.issue, generator.generate_fortran())
        return test.with_issue(self.issue, generator.generate())

    def mutate_c(self, source: str, rng: random.Random) -> str:
        return RandomCodeGenerator(rng=rng, valid_fraction=self.valid_fraction).generate()

    def mutate_fortran(self, source: str, rng: random.Random) -> str:
        return RandomCodeGenerator(rng=rng, valid_fraction=self.valid_fraction).generate_fortran()


# ---------------------------------------------------------------------------
# Issue 4 — removed last bracketed section
# ---------------------------------------------------------------------------


class LastSectionMutator(Mutator):
    """Issue 4: delete the last complete ``{...}`` block.

    Scanning from the end, the last '{' opens the innermost final block
    — in V&V-style tests that is almost always the error-reporting
    branch (``if (err) { ... return 1; }``), so the mutant stays
    compilable and exits 0 unconditionally: an invalid test that only
    judge-level reasoning can catch.
    """

    issue = 4

    def mutate_c(self, source: str, rng: random.Random) -> str:
        last_open = source.rfind("{")
        if last_open < 0:
            raise MutationError("no bracketed section present")
        depth = 0
        end = None
        for i in range(last_open, len(source)):
            if source[i] == "{":
                depth += 1
            elif source[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if end is None:
            raise MutationError("unbalanced source; cannot locate section end")
        return source[:last_open] + source[end + 1:]

    def mutate_fortran(self, source: str, rng: random.Random) -> str:
        lines = source.splitlines()
        # remove the last 'if ... then' ... 'end if' block, inclusive
        end_idx = None
        for i in range(len(lines) - 1, -1, -1):
            if re.match(r"\s*end\s*if\b", lines[i], re.IGNORECASE):
                end_idx = i
                break
        if end_idx is None:
            raise MutationError("no block to remove")
        depth = 0
        start_idx = None
        for i in range(end_idx, -1, -1):
            if re.match(r"\s*end\s*if\b", lines[i], re.IGNORECASE):
                depth += 1
            elif re.match(r"\s*if\s*\(.*\)\s*then\s*$", lines[i], re.IGNORECASE):
                depth -= 1
                if depth == 0:
                    start_idx = i
                    break
        if start_idx is None:
            raise MutationError("unbalanced Fortran blocks")
        del lines[start_idx : end_idx + 1]
        return "\n".join(lines) + "\n"


_MUTATORS: dict[int, Mutator] = {}


def mutator_for_issue(issue: int, valid_fraction_random: float = 0.6) -> Mutator:
    """The mutator implementing one issue id (0-4)."""
    if issue == 3:
        return RandomReplacementMutator(valid_fraction=valid_fraction_random)
    if not _MUTATORS:
        for cls in (DirectiveOrAllocationMutator, OpeningBracketMutator,
                    UndeclaredVariableMutator, LastSectionMutator):
            _MUTATORS[cls.issue] = cls()
    if issue not in _MUTATORS:
        raise ValueError(f"no mutator for issue {issue}")
    return _MUTATORS[issue]
