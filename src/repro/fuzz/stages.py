"""Campaign stages for the PR 1 :class:`StageScheduler`.

One fuzzing round fans its candidate batch over three worker pools:

* ``mutate``       — apply the scheduled operator with the candidate's
  own seeded RNG (a :class:`MutationError` becomes a typed skip);
* ``differential`` — compile + run every oracle arm via
  :class:`~repro.fuzz.differential.DifferentialRunner`;
* ``triage``       — LLM-judge candidates the campaign's policy sends
  on (divergent ones always; optionally every survivor).

Determinism under threads: every per-candidate effect is a pure
function of the candidate's recorded ``(parent, operator, seed)``
triple — mutation draws from a private ``random.Random(seed)``, the
toolchain is deterministic, and the simulated judge is a pure function
of (model seed, prompt).  The campaign applies feedback serially in
slot order after the scheduler drains, so thread completion order can
never leak into corpora, findings or weights.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.corpus.generator import EXTENSIONS, TestFile
from repro.judge.agent import ToolReport
from repro.judge.llmj import AgentLLMJ, JudgeResult
from repro.pipeline.stages import Stage, StageOutcome
from repro.probing.mutators import MutationError

from repro.fuzz.differential import DifferentialOutcome, DifferentialRunner
from repro.fuzz.operators import FuzzOperator


@dataclass
class Candidate:
    """One scheduled mutation slot travelling through the stages."""

    index: int
    parent: TestFile
    operator: str  # "" marks a seed entry (no mutation; differential only)
    seed: int
    test: TestFile | None = None
    skip: str | None = None  # typed-skip reason (MutationError text)
    outcome: DifferentialOutcome | None = None
    judge: JudgeResult | None = None

    @property
    def is_seed(self) -> bool:
        return self.operator == ""


def candidate_name(round_no: int, slot: int, operator: str, language: str) -> str:
    ext = EXTENSIONS.get(language, ".c")
    return f"fz_r{round_no:02d}_{slot:03d}_{operator}{ext}"


class MutateStage(Stage):
    """Apply each candidate's scheduled operator under its private RNG."""

    name = "mutate"

    def __init__(self, operators: dict[str, FuzzOperator], round_no: int, workers: int = 2):
        self.operators = operators
        self.round_no = round_no
        self.workers = workers

    def process(self, payload: Candidate, state) -> StageOutcome:
        if payload.is_seed:
            payload.test = payload.parent
            return StageOutcome(payload, ok=True)
        operator = self.operators[payload.operator]
        rng = random.Random(payload.seed)
        try:
            mutated = operator.apply(payload.parent, rng)
        except MutationError as exc:
            payload.skip = str(exc)
            return StageOutcome(payload, ok=False, done=True,
                                skip_stats=("differential", "triage"))
        # issue operators stamp their defect class; behaviour-preserving
        # operators inherit the parent's ground truth (a dead store on
        # an issue-4 mutant is still an issue-4 test)
        issue = operator.issue if operator.issue is not None else payload.parent.issue
        payload.test = replace(
            mutated,
            name=candidate_name(
                self.round_no, payload.index, payload.operator, payload.parent.language
            ),
            issue=issue,
        )
        return StageOutcome(payload, ok=True)


class DifferentialStage(Stage):
    """Run one candidate through every arm; route per triage policy."""

    name = "differential"

    def __init__(
        self,
        model: str,
        step_limit: int,
        openmp_max_version: float = 4.5,
        cache=None,
        workers: int = 2,
        triage: str = "divergent",  # 'divergent' | 'all' | 'off'
        arms: tuple[str, ...] | None = None,  # None = all registered
    ):
        self.model = model
        self.step_limit = step_limit
        self.openmp_max_version = openmp_max_version
        self.cache = cache
        self.workers = workers
        self.triage = triage
        self.arms = arms

    def make_worker_state(self) -> DifferentialRunner:
        return DifferentialRunner(
            model=self.model,
            step_limit=self.step_limit,
            openmp_max_version=self.openmp_max_version,
            cache=self.cache,
            arms=self.arms,
        )

    def process(self, payload: Candidate, runner: DifferentialRunner) -> StageOutcome:
        payload.outcome = runner.run(payload.test)
        ok = payload.outcome.compiled and not payload.outcome.divergent
        wants_judge = payload.outcome.divergent or (
            self.triage == "all" and payload.outcome.compiled
        )
        if self.triage != "off" and wants_judge:
            return StageOutcome(payload, ok=ok)
        return StageOutcome(payload, ok=ok, done=True, skip_stats=("triage",))


class TriageStage(Stage):
    """LLM-judge one surviving candidate (the paper's issue-4 detector).

    The judge sees the primary arm's observables (``closure`` when that
    arm runs, keeping digests stable across oracle widenings); its
    verdict joins the finding so a human triaging a :class:`Discrepancy`
    knows whether the candidate was even a plausible test to begin with.
    """

    name = "triage"

    def __init__(self, model_sim, flavor: str, kind: str = "direct",
                 cache=None, workers: int = 1):
        self.model_sim = model_sim
        self.flavor = flavor
        self.kind = kind
        self.cache = cache
        self.workers = workers

    def make_worker_state(self):
        judge = AgentLLMJ(self.model_sim, self.flavor, kind=self.kind)
        if self.cache is not None:
            from repro.cache.wrappers import CachingAgentJudge

            return CachingAgentJudge(judge, self.cache)
        return judge

    def process(self, payload: Candidate, judge) -> StageOutcome:
        outcome = payload.outcome
        run = outcome.primary
        report = ToolReport(
            compile_rc=outcome.compile_rc,
            compile_stderr=outcome.compile_stderr,
            compile_stdout="",
            run_rc=run.returncode if run else None,
            run_stderr=run.stderr if run else None,
            run_stdout=run.stdout if run else None,
            diagnostic_codes=outcome.diagnostic_codes,
        )
        payload.judge = judge.judge(payload.test, report)
        return StageOutcome(
            payload,
            ok=payload.judge.says_valid,
            done=True,
            simulated_seconds=payload.judge.simulated_seconds,
        )
