"""Behaviour signatures: the campaign's novelty detector.

A signature buckets what one candidate *did* — compile outcome
(diagnostic codes), return code, fault class, a log-scale steps bucket
and a coarse stdout class — into a short stable string.  Together with
the feature idents a candidate inherits from its template, signatures
define the coverage frontier: a candidate is accepted into the corpus
when it lights up a (feature × signature) cell, a whole signature, or a
feature nothing in the corpus has exercised yet.

Signatures deliberately exclude free text (stderr messages embed file
names and column numbers) so renamed duplicates bucket together.
"""

from __future__ import annotations

from repro.corpus.generator import TestFile


def steps_bucket(steps: int) -> str:
    """Log-scale bucket for interpreter step counts."""
    if steps <= 0:
        return "s0"
    magnitude = 0
    value = steps
    while value >= 10:
        value //= 10
        magnitude += 1
    return f"s1e{magnitude}"


def stdout_class(text: str) -> str:
    """Coarse classification of a program's stdout."""
    if not text:
        return "empty"
    lowered = text.lower()
    if "pass" in lowered:
        return "pass"
    if "fail" in lowered or "mismatch" in lowered:
        return "fail"
    return "other"


def behavior_signature(outcome) -> str:
    """Signature of one :class:`~repro.fuzz.differential.DifferentialOutcome`.

    Divergent outcomes get their own marker so a discrepancy is always
    novel (and therefore always retained by the corpus minimizer).
    """
    if outcome.compile_rc != 0:
        codes = ",".join(sorted(set(outcome.diagnostic_codes))[:4]) or "none"
        return f"compile-fail:{codes}"
    if outcome.divergent:
        return "DIVERGENT"
    run = outcome.primary
    if run is None:
        return "not-run"
    fault = outcome_fault_class(run.fault, run.timed_out)
    return (
        f"rc{run.returncode}:{fault}:{steps_bucket(run.steps)}"
        f":{stdout_class(run.stdout)}"
    )


def outcome_fault_class(fault: str | None, timed_out: bool) -> str:
    """Stable fault-class token (free text collapsed to a family)."""
    if timed_out:
        return "timeout"
    if fault is None:
        return "clean"
    lowered = fault.lower()
    for family in ("segmentation", "bounds", "recursion", "mapping", "present"):
        if family in lowered:
            return family
    return "fault"


def coverage_keys(test: TestFile, signature: str) -> set[str]:
    """The frontier cells one (candidate, signature) pair lights up."""
    keys = {f"sig:{signature}"}
    for ident in test.features:
        keys.add(f"feat:{ident}")
        keys.add(f"cell:{ident}|{signature}")
    return keys
