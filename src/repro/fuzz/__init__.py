"""Coverage-guided differential fuzzing campaigns.

The fifth subsystem: a scenario-discovery loop closing the feedback
path between the mutation operators (:mod:`repro.probing.mutators`),
the feature-coverage matrix (:mod:`repro.corpus.coverage`) and the two
independently-implemented execution backends (``walk`` vs ``closure``).

* :mod:`repro.fuzz.operators` — composable mutation operators (the
  paper's five issue types plus clause shuffles, bound perturbations,
  directive-nesting splices and dead-store injection);
* :mod:`repro.fuzz.differential` — every candidate runs through BOTH
  backends; any observable divergence is a first-class
  :class:`~repro.fuzz.differential.Discrepancy` finding;
* :mod:`repro.fuzz.signature` — behaviour signatures (rc / fault /
  steps buckets) that, with feature idents, define the coverage
  frontier driving adaptive operator weights;
* :mod:`repro.fuzz.campaign` — the round-based campaign engine fanning
  candidates over the :class:`~repro.pipeline.scheduler.StageScheduler`
  (mutate → differential → triage);
* :mod:`repro.fuzz.manifest` — deterministic replay from a campaign
  manifest (seed + recorded operator schedule);
* :mod:`repro.fuzz.minimize` — greedy corpus minimizer preserving the
  coverage frontier.
"""

from repro.fuzz.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    fuzz_stats_snapshot,
)
from repro.fuzz.differential import DifferentialOutcome, DifferentialRunner, Discrepancy
from repro.fuzz.manifest import CampaignManifest, replay_manifest
from repro.fuzz.minimize import minimize_corpus
from repro.fuzz.operators import FuzzOperator, default_operators
from repro.fuzz.signature import behavior_signature, coverage_keys

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignManifest",
    "CampaignResult",
    "DifferentialOutcome",
    "DifferentialRunner",
    "Discrepancy",
    "FuzzOperator",
    "behavior_signature",
    "coverage_keys",
    "default_operators",
    "fuzz_stats_snapshot",
    "minimize_corpus",
    "replay_manifest",
]
