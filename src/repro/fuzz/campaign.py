"""The campaign engine: rounds of mutate → differential → triage.

A :class:`Campaign` seeds a corpus from the template registry, then
runs feedback-driven rounds.  Each round it *serially* draws a batch
of (parent, operator, seed) triples — operators picked by adaptive
weight — fans the batch over the :class:`StageScheduler`, and applies
feedback serially in slot order:

* a candidate whose behaviour lights up a new coverage-frontier cell
  (feature ident, behaviour signature, or feature × signature) is
  accepted into the corpus and its operator's weight rises;
* any cross-backend divergence among the oracle arms becomes a
  :class:`Discrepancy` finding (and a large weight reward — the
  operator found a backend bug);
* a typed skip or known behaviour decays the operator's weight.

Every decision draws from the campaign's single seeded RNG or is a
pure function of recorded state, so a campaign is byte-reproducible
from its seed — and exactly replayable from a manifest's recorded
schedule even if the weight heuristics later change.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.corpus.coverage import CoverageReport, measure_coverage
from repro.corpus.generator import CorpusGenerator, TestFile
from repro.cache.keys import content_key
from repro.llm.model import DeepSeekCoderSim
from repro.obs.metrics import get_metrics
from repro.pipeline.scheduler import StageScheduler
from repro.fuzz.differential import Discrepancy, discrepancy_from
from repro.fuzz.operators import FuzzOperator, operators_by_name
from repro.fuzz.signature import behavior_signature, coverage_keys
from repro.fuzz.stages import Candidate, DifferentialStage, MutateStage, TriageStage

WEIGHT_FLOOR = 0.2
WEIGHT_CEIL = 8.0


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign's behaviour depends on (manifest-portable)."""

    flavor: str = "acc"
    languages: tuple[str, ...] = ("c", "cpp")
    seed: int = 1
    rounds: int = 4
    batch_size: int = 24
    seed_count: int = 12
    step_limit: int = 300_000
    workers: int = 2
    judge_workers: int = 2
    triage: str = "divergent"  # 'divergent' | 'all' | 'off'
    judge_kind: str = "direct"
    model_seed: int = 20240822
    openmp_max_version: float = 4.5
    max_corpus: int = 512
    operators: tuple[str, ...] | None = None
    arms: tuple[str, ...] | None = None  # None = every registered backend

    def __post_init__(self):
        if self.triage not in ("divergent", "all", "off"):
            raise ValueError(f"triage must be divergent/all/off, got {self.triage!r}")
        if self.rounds < 0 or self.batch_size < 1 or self.seed_count < 1:
            raise ValueError("rounds >= 0, batch_size >= 1, seed_count >= 1 required")
        if self.arms is not None:
            from repro.runtime.interpreter import EXECUTION_BACKENDS

            unknown = [arm for arm in self.arms if arm not in EXECUTION_BACKENDS]
            if unknown or len(self.arms) < 2:
                raise ValueError(
                    f"arms must be >= 2 of {EXECUTION_BACKENDS}, got {self.arms!r}"
                )

    def to_json(self) -> dict:
        data = {k: getattr(self, k) for k in self.__dataclass_fields__}
        data["languages"] = list(self.languages)
        data["operators"] = list(self.operators) if self.operators else None
        data["arms"] = list(self.arms) if self.arms else None
        return data

    @classmethod
    def from_json(cls, data: dict) -> "CampaignConfig":
        kwargs = dict(data)
        kwargs["languages"] = tuple(kwargs.get("languages", ("c", "cpp")))
        operators = kwargs.get("operators")
        kwargs["operators"] = tuple(operators) if operators else None
        arms = kwargs.get("arms")
        kwargs["arms"] = tuple(arms) if arms else None
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in kwargs.items() if k in known})


@dataclass
class OperatorState:
    """Adaptive weight plus counters for one operator."""

    name: str
    weight: float = 1.0
    scheduled: int = 0
    applied: int = 0
    skipped: int = 0
    accepted: int = 0
    discrepancies: int = 0

    def reward_accept(self) -> None:
        self.weight = min(self.weight + 0.9, WEIGHT_CEIL)

    def reward_discrepancy(self) -> None:
        self.weight = min(self.weight + 2.0, WEIGHT_CEIL)

    def decay_known(self) -> None:
        self.weight = max(self.weight * 0.93, WEIGHT_FLOOR)

    def decay_skip(self) -> None:
        self.weight = max(self.weight * 0.75, WEIGHT_FLOOR)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "weight": round(self.weight, 6),
            "scheduled": self.scheduled,
            "applied": self.applied,
            "skipped": self.skipped,
            "accepted": self.accepted,
            "discrepancies": self.discrepancies,
        }

    @classmethod
    def from_json(cls, data: dict) -> "OperatorState":
        return cls(
            name=data["name"],
            weight=float(data.get("weight", 1.0)),
            scheduled=int(data.get("scheduled", 0)),
            applied=int(data.get("applied", 0)),
            skipped=int(data.get("skipped", 0)),
            accepted=int(data.get("accepted", 0)),
            discrepancies=int(data.get("discrepancies", 0)),
        )


@dataclass
class CorpusEntry:
    """One retained test with the frontier cells it covers."""

    test: TestFile
    signature: str
    keys: tuple[str, ...]  # every frontier key this entry lights up
    new_keys: tuple[str, ...]  # the subset that was new at acceptance


class CoverageFrontier:
    """The set of (feature / signature / cell) keys the corpus covers."""

    def __init__(self):
        self.keys: set[str] = set()

    def observe(self, test: TestFile, signature: str) -> tuple[set[str], set[str]]:
        """Returns (all keys of this candidate, the new subset)."""
        keys = coverage_keys(test, signature)
        fresh = keys - self.keys
        self.keys |= fresh
        return keys, fresh

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class CampaignStats:
    """Work and cost accounting for one campaign run."""

    rounds: int = 0
    scheduled: int = 0
    applied: int = 0
    skipped: int = 0
    compile_failures: int = 0
    accepted: int = 0
    discrepancies: int = 0
    executions: int = 0  # backend runs (2 per compiled candidate)
    judge_calls: int = 0
    #: accepted candidates dropped because the corpus hit max_corpus
    #: (divergent witnesses bypass the cap; drops are reported, never
    #: silent — the frontier may then cover more than the saved corpus)
    cap_dropped: int = 0
    wall_seconds: float = 0.0
    #: cost-model walls under the repo's simulated 33B service-rate
    #: convention: serial = Σ per-item stage costs, parallel = Σ per
    #: round of the bottleneck pool's cost (stage cost / its workers)
    serial_wall_model: float = 0.0
    parallel_wall_model: float = 0.0
    coverage_curve: list[int] = field(default_factory=list)
    acceptance_curve: list[int] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.applied if self.applied else 0.0

    @property
    def model_speedup(self) -> float:
        if self.parallel_wall_model <= 0:
            return 0.0
        return self.serial_wall_model / self.parallel_wall_model

    def to_json(self) -> dict:
        return {
            "rounds": self.rounds,
            "scheduled": self.scheduled,
            "applied": self.applied,
            "skipped": self.skipped,
            "compile_failures": self.compile_failures,
            "accepted": self.accepted,
            "discrepancies": self.discrepancies,
            "cap_dropped": self.cap_dropped,
            "executions": self.executions,
            "judge_calls": self.judge_calls,
            "wall_seconds": round(self.wall_seconds, 4),
            "serial_wall_model": round(self.serial_wall_model, 4),
            "parallel_wall_model": round(self.parallel_wall_model, 4),
            "model_speedup": round(self.model_speedup, 3),
            "acceptance_rate": round(self.acceptance_rate, 4),
            "coverage_curve": list(self.coverage_curve),
            "acceptance_curve": list(self.acceptance_curve),
        }

    @classmethod
    def from_json(cls, data: dict) -> "CampaignStats":
        stats = cls()
        for name in (
            "rounds", "scheduled", "applied", "skipped", "compile_failures",
            "accepted", "discrepancies", "cap_dropped", "executions",
            "judge_calls",
        ):
            setattr(stats, name, int(data.get(name, 0)))
        for name in ("wall_seconds", "serial_wall_model", "parallel_wall_model"):
            setattr(stats, name, float(data.get(name, 0.0)))
        stats.coverage_curve = [int(v) for v in data.get("coverage_curve", [])]
        stats.acceptance_curve = [int(v) for v in data.get("acceptance_curve", [])]
        return stats


@dataclass
class TriageFlag:
    """A judge verdict worth a human look (the issue-4 failure class)."""

    name: str
    operator: str
    verdict: str
    reason: str

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "operator": self.operator,
            "verdict": self.verdict,
            "reason": self.reason,
        }


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    config: CampaignConfig
    corpus: list[CorpusEntry]
    findings: list[Discrepancy]
    triage_flags: list[TriageFlag]
    coverage: CoverageReport
    stats: CampaignStats
    operator_states: dict[str, OperatorState]
    schedule: list[list[dict]]  # recorded (parent, operator, seed) per round
    #: True when the run stopped at a round boundary on request (job
    #: checkpoint-then-drain) rather than finishing every round; the
    #: state through the last completed round is on disk in the
    #: checkpoint, and the result must not be saved as a final manifest
    interrupted: bool = False

    def digest(self) -> str:
        """Content address of the observable outcome (replay identity)."""
        return content_key(
            "campaign-digest",
            [[e.test.name, e.test.source, e.signature] for e in self.corpus],
            [f.to_json() for f in self.findings],
            [f.to_json() for f in self.triage_flags],
            self.coverage.render(),
            self.stats.coverage_curve,
        )

    def tests(self) -> list[TestFile]:
        return [entry.test for entry in self.corpus]

    def render_report(self) -> str:
        lines = [
            f"Fuzzing campaign: flavor={self.config.flavor} seed={self.config.seed} "
            f"rounds={self.stats.rounds}",
            f"  corpus: {len(self.corpus)} tests "
            f"({self.stats.accepted} accepted of {self.stats.applied} applied, "
            f"{self.stats.skipped} typed skips"
            + (f", {self.stats.cap_dropped} dropped at the max_corpus cap"
               if self.stats.cap_dropped else "")
            + ")",
            f"  frontier: {self.stats.coverage_curve[-1] if self.stats.coverage_curve else 0} "
            f"keys; curve {self.stats.coverage_curve}",
            f"  discrepancies: {len(self.findings)}; triage flags: {len(self.triage_flags)}",
            f"  executions: {self.stats.executions} "
            f"(model speedup {self.stats.model_speedup:.2f}x over serial)",
            "  operator weights:",
        ]
        for name in sorted(self.operator_states):
            state = self.operator_states[name]
            lines.append(
                f"    {name:15s} w={state.weight:5.2f} "
                f"applied={state.applied:4d} accepted={state.accepted:3d} "
                f"skipped={state.skipped:3d} discrepancies={state.discrepancies}"
            )
        lines.append("")
        lines.append(self.coverage.render())
        for finding in self.findings:
            lines.append("")
            lines.append(finding.render())
        return "\n".join(lines)


class Campaign:
    """Coverage-guided differential fuzzing over the template corpus."""

    def __init__(self, config: CampaignConfig, cache=None,
                 reuse_differential: bool = True):
        """``cache`` is a :class:`~repro.cache.bundle.PipelineCache` (or
        None); the campaign uses its ``fuzz`` namespace for differential
        outcomes and its ``judge`` namespace for triage verdicts.

        ``reuse_differential=False`` ignores the fuzz namespace so every
        candidate genuinely re-executes — replay verification sets it,
        because a warm cache would otherwise verify only the cache
        round-trip, never that the current substrate still produces the
        recorded behaviour.
        """
        self.config = config
        self.cache = cache
        self.reuse_differential = reuse_differential
        self.operators: dict[str, FuzzOperator] = {
            op.name: op for op in operators_by_name(config.operators)
        }
        self.model_sim = DeepSeekCoderSim(seed=config.model_seed)

    # ------------------------------------------------------------------

    def run(self, schedule_override: list[list[dict]] | None = None,
            progress=None, checkpoint_dir: str | None = None,
            checkpoint_every: int = 1, resume=None,
            stop: threading.Event | None = None) -> CampaignResult:
        """Run the campaign (or exactly replay a recorded schedule).

        Durability knobs:

        * ``checkpoint_dir`` — write an atomic resume checkpoint
          (``checkpoint.json``) into this directory after the seed phase
          and after every ``checkpoint_every``-th round.  The checkpoint
          captures the *entire* round-loop state — corpus, frontier
          keys, operator weights (full precision), the serial RNG's
          decision-stream position, stats and the recorded schedule —
          so a resumed run replays the exact remaining decision stream.
        * ``resume`` — a :class:`~repro.fuzz.checkpoint.CampaignCheckpoint`;
          skips seeding, restores the saved state and continues from the
          next unfinished round.  The final result is digest-identical
          to an uninterrupted run of the same config.
        * ``stop`` — optional event checked at round boundaries; when
          set, the run checkpoints what it has and returns early with
          ``result.interrupted`` True (the daemon's SIGTERM
          "checkpoint then drain" path).
        """
        import random as _random

        from repro.testing.faultinject import fault_point

        config = self.config
        rng = _random.Random(f"fuzz-campaign:{config.seed}")
        stats = CampaignStats()
        frontier = CoverageFrontier()
        states = {name: OperatorState(name) for name in self.operators}
        corpus: list[CorpusEntry] = []
        by_name: dict[str, CorpusEntry] = {}
        findings: list[Discrepancy] = []
        triage_flags: list[TriageFlag] = []
        schedule: list[list[dict]] = []
        start_round = 1
        interrupted = False
        started = time.perf_counter()

        if resume is not None:
            (rng, stats, frontier, states, corpus, findings, triage_flags,
             schedule, start_round) = resume.restore()
            unknown = set(states) - set(self.operators)
            if unknown or resume.config.to_json() != config.to_json():
                raise ValueError(
                    "checkpoint does not match this campaign's config/operators"
                )
            by_name = {entry.test.name: entry for entry in corpus}
            if progress:
                progress(
                    f"resumed at round {start_round}: corpus {len(corpus)}, "
                    f"frontier {len(frontier)}, findings {len(findings)}"
                )
        wall_base = stats.wall_seconds

        def write_checkpoint(next_round: int, point: str) -> None:
            if checkpoint_dir is None:
                return
            from repro.fuzz.checkpoint import CampaignCheckpoint

            CampaignCheckpoint.capture(
                config=config, next_round=next_round, rng=rng,
                frontier=frontier, corpus=corpus, states=states, stats=stats,
                findings=findings, triage_flags=triage_flags,
                schedule=schedule,
                wall_seconds=wall_base + (time.perf_counter() - started),
            ).save(checkpoint_dir)
            fault_point(point)

        if resume is None:
            seeds = self._seed_tests()
            seed_candidates = [
                Candidate(index=i, parent=test, operator="", seed=0)
                for i, test in enumerate(seeds)
            ]
            processed = self._run_batch(seed_candidates, round_no=0, stats=stats)
            for cand in processed:
                entry = self._absorb(cand, frontier, states, stats, findings,
                                     triage_flags, accept_always=True)
                if entry is not None:
                    corpus.append(entry)
                    by_name[entry.test.name] = entry
            stats.coverage_curve.append(len(frontier))
            stats.acceptance_curve.append(len(corpus))
            if progress:
                progress(f"seeded {len(corpus)} tests, frontier {len(frontier)}")
            write_checkpoint(1, "campaign:post-seed")

        for round_no in range(start_round, config.rounds + 1):
            if stop is not None and stop.is_set():
                interrupted = True
                if progress:
                    progress(
                        f"stop requested: checkpointed through round {round_no - 1}"
                    )
                break
            if schedule_override is not None:
                if round_no - 1 >= len(schedule_override):
                    break
                plan = schedule_override[round_no - 1]
            else:
                plan = self._draw_plan(rng, corpus, states)
            schedule.append(plan)
            batch = []
            drifted = None
            for slot, triple in enumerate(plan):
                parent_entry = by_name.get(triple["parent"])
                if parent_entry is None:
                    # a recorded parent the replayed corpus never grew:
                    # the substrate drifted since the manifest was
                    # written.  Stop faithfully-replayable execution
                    # here; the digest mismatch reports the drift (a
                    # crash would hide exactly what replay exists to
                    # diagnose).
                    drifted = triple["parent"]
                    break
                batch.append(
                    Candidate(
                        index=slot,
                        parent=parent_entry.test,
                        operator=triple["operator"],
                        seed=triple["seed"],
                    )
                )
            if drifted is not None:
                if progress:
                    progress(
                        f"replay drift: round {round_no} schedule names "
                        f"unknown parent {drifted!r}; stopping here"
                    )
                break
            processed = self._run_batch(batch, round_no=round_no, stats=stats)
            for cand in processed:
                entry = self._absorb(cand, frontier, states, stats, findings,
                                     triage_flags)
                if entry is None:
                    continue
                # the corpus cap bounds memory/disk, never discovery: a
                # divergent witness always lands, and any other drop is
                # counted and reported instead of vanishing silently
                if (len(corpus) < config.max_corpus
                        or entry.signature == "DIVERGENT"):
                    corpus.append(entry)
                    by_name[entry.test.name] = entry
                else:
                    stats.cap_dropped += 1
            stats.rounds = round_no
            stats.coverage_curve.append(len(frontier))
            stats.acceptance_curve.append(len(corpus))
            # inert telemetry: counters/gauges only — the digest, RNG,
            # and checkpoint contents never see any of this
            registry = get_metrics()
            registry.counter("fuzz_rounds_total").inc()
            registry.counter("fuzz_candidates_total").inc(len(processed))
            registry.gauge("fuzz_corpus_size").set(len(corpus))
            registry.gauge("fuzz_frontier_size").set(len(frontier))
            if progress:
                progress(
                    f"round {round_no}: corpus {len(corpus)}, "
                    f"frontier {len(frontier)}, findings {len(findings)}"
                )
            if round_no % max(1, checkpoint_every) == 0 or round_no == config.rounds:
                write_checkpoint(round_no + 1, "campaign:post-round")

        stats.wall_seconds = wall_base + (time.perf_counter() - started)
        coverage = measure_coverage(config.flavor, [e.test for e in corpus])
        result = CampaignResult(
            config=config,
            corpus=corpus,
            findings=findings,
            triage_flags=triage_flags,
            coverage=coverage,
            stats=stats,
            operator_states=states,
            schedule=schedule,
            interrupted=interrupted,
        )
        if not interrupted:
            # partial runs stay out of the process-wide counters: the
            # resumed continuation will record the completed campaign
            _REGISTRY.record(result)
        return result

    # ------------------------------------------------------------------

    def _seed_tests(self) -> list[TestFile]:
        generator = CorpusGenerator(
            seed=self.config.seed,
            validate=False,  # the differential stage is the validator here
            openmp_max_version=self.config.openmp_max_version,
        )
        return generator.generate(
            self.config.flavor, self.config.seed_count, languages=self.config.languages
        )

    def _draw_plan(self, rng, corpus: list[CorpusEntry],
                   states: dict[str, OperatorState]) -> list[dict]:
        names = sorted(states)
        weights = [states[name].weight for name in names]
        plan = []
        for _ in range(self.config.batch_size):
            parent = corpus[rng.randrange(len(corpus))]
            operator = rng.choices(names, weights=weights, k=1)[0]
            plan.append(
                {
                    "parent": parent.test.name,
                    "operator": operator,
                    "seed": rng.getrandbits(32),
                }
            )
        return plan

    def _run_batch(self, batch: list[Candidate], round_no: int,
                   stats: CampaignStats) -> list[Candidate]:
        config = self.config
        fuzz_cache = (
            getattr(self.cache, "fuzz", None) if self.reuse_differential else None
        )
        judge_cache = getattr(self.cache, "judge", None)
        stages = [
            MutateStage(self.operators, round_no=round_no, workers=config.workers),
            DifferentialStage(
                model=config.flavor,
                step_limit=config.step_limit,
                openmp_max_version=config.openmp_max_version,
                cache=fuzz_cache,
                workers=config.workers,
                triage=config.triage,
                arms=config.arms,
            ),
            TriageStage(
                self.model_sim,
                config.flavor,
                kind=config.judge_kind,
                cache=judge_cache,
                workers=config.judge_workers,
            ),
        ]
        scheduler = StageScheduler(stages, queue_capacity=max(16, config.batch_size))
        result = scheduler.run(batch)
        result.raise_first(f"fuzz round {round_no}")

        # cost-model accounting (the repo's simulated-service convention):
        # triage charges the 33B service-rate model, CPU stages their
        # measured busy seconds; the parallel model is the bottleneck
        # pool's share, i.e. a pipelined scheduler's critical path
        costs = {}
        for stage in stages:
            st = result.stats[stage.name]
            cost = st.simulated_seconds if stage.name == "triage" else st.busy_seconds
            costs[stage.name] = (cost, max(1, stage.workers))
        stats.serial_wall_model += sum(cost for cost, _ in costs.values())
        stats.parallel_wall_model += max(
            (cost / workers for cost, workers in costs.values()), default=0.0
        )
        stats.judge_calls += result.stats["triage"].processed

        finished = [item for item in result.finished if isinstance(item, Candidate)]
        finished.sort(key=lambda cand: cand.index)
        return finished

    def _absorb(self, cand: Candidate, frontier: CoverageFrontier,
                states: dict[str, OperatorState], stats: CampaignStats,
                findings: list[Discrepancy], triage_flags: list[TriageFlag],
                accept_always: bool = False) -> CorpusEntry | None:
        """Serial, deterministic feedback for one finished candidate."""
        state = states.get(cand.operator)
        stats.scheduled += 1
        if state is not None:
            state.scheduled += 1
        if cand.skip is not None:
            stats.skipped += 1
            if state is not None:
                state.skipped += 1
                state.decay_skip()
            return None
        stats.applied += 1
        if state is not None:
            state.applied += 1
        outcome = cand.outcome
        stats.executions += outcome.executions
        if not outcome.compiled:
            stats.compile_failures += 1
        signature = behavior_signature(outcome)
        if outcome.divergent:
            stats.discrepancies += 1
            findings.append(discrepancy_from(cand.test, cand.operator, outcome))
            if state is not None:
                state.discrepancies += 1
                state.reward_discrepancy()
        if cand.judge is not None and not outcome.divergent:
            run = outcome.primary
            tools_clean = outcome.compiled and run is not None and run.returncode == 0
            if tools_clean and cand.judge.says_invalid:
                verdict = cand.judge.verdict
                triage_flags.append(
                    TriageFlag(
                        name=cand.test.name,
                        operator=cand.operator,
                        verdict=verdict.value if verdict is not None else "unparsed",
                        reason=cand.judge.response.splitlines()[0][:160]
                        if cand.judge.response else "",
                    )
                )
        keys, fresh = frontier.observe(cand.test, signature)
        # divergent witnesses are always retained even when their keys
        # are already covered: every Discrepancy finding must have a
        # runnable reproducer in the corpus the minimizer pins
        if accept_always or fresh or outcome.divergent:
            stats.accepted += 0 if accept_always else 1
            if state is not None:
                state.accepted += 1
                state.reward_accept()
            return CorpusEntry(
                test=cand.test,
                signature=signature,
                keys=tuple(sorted(keys)),
                new_keys=tuple(sorted(fresh)),
            )
        if state is not None:
            state.decay_known()
        return None


# ---------------------------------------------------------------------------
# process-wide campaign registry (the service's /v1/fuzz/stats source)
# ---------------------------------------------------------------------------


class _FuzzRegistry:
    """Lifetime counters over every campaign run in this process."""

    def __init__(self):
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with getattr(self, "_lock", threading.Lock()):
            self.campaigns = 0
            self.rounds = 0
            self.candidates = 0
            self.executions = 0
            self.accepted = 0
            self.discrepancies = 0
            self.triage_flags = 0
            self.last_digest: str | None = None
            self.last_coverage_keys = 0

    def record(self, result: CampaignResult) -> None:
        with self._lock:
            self.campaigns += 1
            self.rounds += result.stats.rounds
            self.candidates += result.stats.scheduled
            self.executions += result.stats.executions
            self.accepted += result.stats.accepted
            self.discrepancies += len(result.findings)
            self.triage_flags += len(result.triage_flags)
            self.last_digest = result.digest()
            self.last_coverage_keys = (
                result.stats.coverage_curve[-1] if result.stats.coverage_curve else 0
            )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "campaigns": self.campaigns,
                "rounds": self.rounds,
                "candidates": self.candidates,
                "executions": self.executions,
                "accepted": self.accepted,
                "discrepancies": self.discrepancies,
                "triage_flags": self.triage_flags,
                "last_digest": self.last_digest,
                "last_coverage_keys": self.last_coverage_keys,
            }


_REGISTRY = _FuzzRegistry()


def fuzz_stats_snapshot() -> dict:
    """Lifetime fuzz counters for this process (``GET /v1/fuzz/stats``)."""
    return _REGISTRY.snapshot()


def reset_fuzz_stats() -> None:
    """Test hook: zero the process-wide registry."""
    _REGISTRY.reset()
