"""Campaign manifests: persistence and deterministic replay.

A manifest records everything needed to reproduce a campaign
byte-for-byte: the full config, the *recorded* operator schedule
(parent name, operator, per-candidate RNG seed for every slot of every
round), the per-entry corpus metadata (signature + frontier keys, so
the minimizer and report work offline), the findings, and the result
digest.  Replay re-executes the recorded schedule — not the weight
heuristics — so a manifest stays exact even if the adaptive-weight
policy changes in a later PR; the digest check catches any drift in
the substrate itself (compiler, interpreter, operators).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.atomicio import atomic_write_text
from repro.corpus.suite import TestSuite
from repro.fuzz.campaign import Campaign, CampaignConfig, CampaignResult
from repro.fuzz.differential import Discrepancy

MANIFEST_VERSION = 1
MANIFEST_NAME = "campaign.json"
CORPUS_DIR = "corpus"
REPORT_NAME = "report.txt"


class ReplayError(Exception):
    """The manifest cannot be replayed (version/content mismatch)."""


@dataclass
class CampaignManifest:
    """The replayable record of one campaign."""

    config: CampaignConfig
    schedule: list[list[dict]]
    digest: str
    corpus_meta: list[dict]  # {name, signature, keys, new_keys}
    findings: list[dict]
    triage_flags: list[dict]
    stats: dict
    operator_states: list[dict]

    @classmethod
    def from_result(cls, result: CampaignResult) -> "CampaignManifest":
        return cls(
            config=result.config,
            schedule=result.schedule,
            digest=result.digest(),
            corpus_meta=[
                {
                    "name": entry.test.name,
                    "signature": entry.signature,
                    "keys": list(entry.keys),
                    "new_keys": list(entry.new_keys),
                }
                for entry in result.corpus
            ],
            findings=[finding.to_json() for finding in result.findings],
            triage_flags=[flag.to_json() for flag in result.triage_flags],
            stats=result.stats.to_json(),
            operator_states=[
                result.operator_states[name].to_json()
                for name in sorted(result.operator_states)
            ],
        )

    def to_json(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "config": self.config.to_json(),
            "schedule": self.schedule,
            "digest": self.digest,
            "corpus": self.corpus_meta,
            "findings": self.findings,
            "triage_flags": self.triage_flags,
            "stats": self.stats,
            "operators": self.operator_states,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CampaignManifest":
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise ReplayError(
                f"unsupported manifest version {version!r} (expected {MANIFEST_VERSION})"
            )
        return cls(
            config=CampaignConfig.from_json(data["config"]),
            schedule=[list(round_plan) for round_plan in data["schedule"]],
            digest=data["digest"],
            corpus_meta=list(data.get("corpus", ())),
            findings=list(data.get("findings", ())),
            triage_flags=list(data.get("triage_flags", ())),
            stats=dict(data.get("stats", {})),
            operator_states=list(data.get("operators", ())),
        )

    def discrepancies(self) -> list[Discrepancy]:
        return [Discrepancy.from_json(raw) for raw in self.findings]

    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        # atomic: a kill mid-save (or a resumed run overwriting a stale
        # manifest) must never leave a torn campaign.json
        return atomic_write_text(
            Path(path),
            json.dumps(self.to_json(), indent=2, sort_keys=True),
            fault_tag="campaign-manifest",
        )

    @classmethod
    def load(cls, path: str | Path) -> "CampaignManifest":
        return cls.from_json(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# campaign directory layout
# ---------------------------------------------------------------------------


def save_campaign(result: CampaignResult, directory: str | Path) -> Path:
    """Write a campaign output dir: manifest + corpus suite + report."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    manifest = CampaignManifest.from_result(result)
    manifest.save(root / MANIFEST_NAME)
    suite = TestSuite(
        f"{result.config.flavor}-fuzz-seed{result.config.seed}",
        result.config.flavor,
        result.tests(),
    )
    suite.save(root / CORPUS_DIR)
    atomic_write_text(root / REPORT_NAME, result.render_report() + "\n")
    return root


def load_campaign_dir(directory: str | Path) -> tuple[CampaignManifest, TestSuite]:
    """Load a saved campaign (manifest + corpus suite)."""
    root = Path(directory)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        # allow pointing straight at the manifest file
        if root.is_file():
            manifest_path = root
            root = root.parent
        else:
            raise FileNotFoundError(f"no {MANIFEST_NAME} under {root}")
    manifest = CampaignManifest.load(manifest_path)
    suite = TestSuite.load(root / CORPUS_DIR)
    return manifest, suite


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------


def replay_manifest(manifest: CampaignManifest, cache=None,
                    progress=None) -> tuple[CampaignResult, bool]:
    """Re-execute a manifest's recorded schedule.

    Returns ``(result, identical)`` where ``identical`` says whether the
    replayed digest matches the recorded one — False means the substrate
    (compiler, interpreter, operators) drifted since the manifest was
    written, and the replayed result shows exactly where.

    Replay never *reads* the fuzz cache (``reuse_differential=False``):
    a warm ``--cache-dir`` would hand back outcomes recorded before a
    substrate change and vacuously confirm the digest.  The judge cache
    is still consulted — verdicts are pure functions of their prompts,
    and a changed prompt is a changed key.
    """
    campaign = Campaign(manifest.config, cache=cache, reuse_differential=False)
    result = campaign.run(schedule_override=manifest.schedule, progress=progress)
    return result, result.digest() == manifest.digest
