"""Round-boundary campaign checkpoints: atomic, resumable, replay-exact.

A checkpoint is everything :meth:`Campaign.run`'s round loop mutates,
frozen at a round boundary:

* the corpus (full :class:`TestFile` fields plus each entry's
  signature and frontier keys) and the frontier key set;
* operator weights at **full float precision** — ``OperatorState``'s
  display JSON rounds to 6 decimals, which would be enough to nudge a
  ``random.choices`` boundary and fork the decision stream;
* the serial RNG's exact Mersenne-Twister state, captured *after* the
  last completed round's draws, so the first resumed draw is the same
  draw the uninterrupted run would have made;
* accumulated findings, triage flags, stats and the recorded schedule.

One file (``checkpoint.json``), written through
:func:`repro.core.atomicio.atomic_write_json` with fault tag
``checkpoint``: a kill mid-write leaves the previous round's checkpoint
intact, so ``--resume`` simply replays one more round.  That invariant
— resume after SIGKILL at *any* instrumented point yields a manifest
digest-identical to an uninterrupted control run — is enforced by
``tests/test_durability.py`` and the CI crash-recovery smoke job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.atomicio import atomic_write_json
from repro.corpus.generator import TestFile
from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignStats,
    CorpusEntry,
    CoverageFrontier,
    OperatorState,
    TriageFlag,
)
from repro.fuzz.differential import Discrepancy

CHECKPOINT_VERSION = 1
CHECKPOINT_NAME = "checkpoint.json"


class CheckpointError(Exception):
    """A checkpoint file exists but cannot be read or is incompatible."""


def _entry_to_json(entry: CorpusEntry) -> dict:
    test = entry.test
    return {
        "name": test.name,
        "language": test.language,
        "model": test.model,
        "source": test.source,
        "template": test.template,
        "features": list(test.features),
        "issue": test.issue,
        "signature": entry.signature,
        "keys": list(entry.keys),
        "new_keys": list(entry.new_keys),
    }


def _entry_from_json(data: dict) -> CorpusEntry:
    return CorpusEntry(
        test=TestFile(
            name=data["name"],
            language=data["language"],
            model=data["model"],
            source=data["source"],
            template=data["template"],
            features=tuple(data.get("features", ())),
            issue=data.get("issue"),
        ),
        signature=data["signature"],
        keys=tuple(data.get("keys", ())),
        new_keys=tuple(data.get("new_keys", ())),
    )


@dataclass
class CampaignCheckpoint:
    """The JSON-portable frozen state of a campaign at a round boundary."""

    config: CampaignConfig
    next_round: int
    rng_state: list  # [version, [625 ints], gauss_next] from Random.getstate()
    frontier_keys: list[str]
    corpus: list[dict]
    operator_states: list[dict]
    findings: list[dict]
    triage_flags: list[dict]
    stats: dict
    schedule: list[list[dict]]

    @classmethod
    def capture(cls, *, config: CampaignConfig, next_round: int, rng,
                frontier: CoverageFrontier, corpus: list[CorpusEntry],
                states: dict[str, OperatorState], stats: CampaignStats,
                findings: list[Discrepancy], triage_flags: list[TriageFlag],
                schedule: list[list[dict]],
                wall_seconds: float) -> "CampaignCheckpoint":
        version, internal, gauss_next = rng.getstate()
        stats_json = stats.to_json()
        stats_json["wall_seconds"] = round(wall_seconds, 4)
        return cls(
            config=config,
            next_round=next_round,
            rng_state=[version, list(internal), gauss_next],
            frontier_keys=sorted(frontier.keys),
            corpus=[_entry_to_json(entry) for entry in corpus],
            operator_states=[
                # full-precision weight: see module docstring
                {**states[name].to_json(), "weight": states[name].weight}
                for name in sorted(states)
            ],
            findings=[finding.to_json() for finding in findings],
            triage_flags=[flag.to_json() for flag in triage_flags],
            stats=stats_json,
            schedule=[list(plan) for plan in schedule],
        )

    def to_json(self) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "config": self.config.to_json(),
            "next_round": self.next_round,
            "rng_state": self.rng_state,
            "frontier_keys": self.frontier_keys,
            "corpus": self.corpus,
            "operator_states": self.operator_states,
            "findings": self.findings,
            "triage_flags": self.triage_flags,
            "stats": self.stats,
            "schedule": self.schedule,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CampaignCheckpoint":
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version!r} is not supported "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        try:
            return cls(
                config=CampaignConfig.from_json(data["config"]),
                next_round=int(data["next_round"]),
                rng_state=data["rng_state"],
                frontier_keys=list(data["frontier_keys"]),
                corpus=list(data["corpus"]),
                operator_states=list(data["operator_states"]),
                findings=list(data["findings"]),
                triage_flags=list(data["triage_flags"]),
                stats=dict(data["stats"]),
                schedule=[list(plan) for plan in data["schedule"]],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc

    def save(self, directory: str | Path) -> Path:
        return atomic_write_json(
            Path(directory) / CHECKPOINT_NAME,
            self.to_json(),
            indent=2,
            sort_keys=True,
            fault_tag="checkpoint",
        )

    def restore(self):
        """Rebuild the live round-loop state ``Campaign.run`` resumes from."""
        import random as _random

        version, internal, gauss_next = self.rng_state
        rng = _random.Random()
        rng.setstate((version, tuple(internal), gauss_next))
        stats = CampaignStats.from_json(self.stats)
        frontier = CoverageFrontier()
        frontier.keys = set(self.frontier_keys)
        states = {
            data["name"]: OperatorState.from_json(data)
            for data in self.operator_states
        }
        corpus = [_entry_from_json(data) for data in self.corpus]
        findings = [Discrepancy.from_json(data) for data in self.findings]
        triage_flags = [TriageFlag(**data) for data in self.triage_flags]
        schedule = [list(plan) for plan in self.schedule]
        return (rng, stats, frontier, states, corpus, findings, triage_flags,
                schedule, self.next_round)


def load_checkpoint(directory: str | Path) -> CampaignCheckpoint | None:
    """Read ``<directory>/checkpoint.json``; None when absent.

    A present-but-unreadable file raises :class:`CheckpointError` — the
    atomic write discipline means that can only happen through external
    damage, which deserves a loud failure, not a silent fresh start.
    """
    path = Path(directory) / CHECKPOINT_NAME
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise CheckpointError(f"malformed checkpoint {path}: not a JSON object")
    return CampaignCheckpoint.from_json(data)
