"""Composable fuzzing operators.

A :class:`FuzzOperator` turns one corpus entry into one candidate.  The
paper's five issue mutators are wrapped as operators (their ground
truth carries over: the mutant is expected-invalid), and four new
operators extend the search space with *behaviour*-oriented mutations
whose products are usually still valid tests — exactly the candidates
that stress the differential oracle rather than the compiler's error
paths:

* ``clause-shuffle``     — permute a directive's clause list
  (semantics-preserving; stresses clause parsing order-independence);
* ``bound-perturb``      — nudge a ``#define``'d problem size
  (self-checking tests stay green but walk a different step count);
* ``nesting-splice``     — copy an existing directive above another
  loop (new directive-nesting combinations; may or may not compile);
* ``dead-store``         — inject a block-scoped dead store inside a
  loop body (semantics-preserving; perturbs slot allocation and step
  accounting in both backends).

Inapplicable inputs raise :class:`~repro.probing.mutators.MutationError`
— the campaign records a *typed skip*, never a crash.
"""

from __future__ import annotations

import random
import re
from dataclasses import replace

from repro.corpus.generator import TestFile
from repro.probing.mutators import ISSUE_DESCRIPTIONS, MutationError, mutator_for_issue

#: clause keywords that can appear without parentheses on a directive
_BARE_CLAUSES = {
    "async", "wait", "seq", "independent", "auto", "gang", "worker",
    "vector", "nowait", "untied",
}

#: directive-head words that are never clauses (they name the construct)
_HEAD_WORDS = {
    "parallel", "kernels", "serial", "loop", "data", "enter", "exit",
    "update", "atomic", "target", "teams", "distribute", "for", "simd",
    "sections", "section", "single", "master", "critical", "task",
    "barrier", "taskwait", "declare", "routine", "cache", "host_data",
}


class FuzzOperator:
    """One mutation strategy the campaign can schedule."""

    name: str = "operator"
    #: issue id stamped on products (None = expected-valid candidate)
    issue: int | None = None

    def apply(self, test: TestFile, rng: random.Random) -> TestFile:
        """Produce a candidate from ``test`` (raise MutationError to skip)."""
        raise NotImplementedError

    def describe(self) -> str:
        if self.issue is not None and self.issue in ISSUE_DESCRIPTIONS:
            return ISSUE_DESCRIPTIONS[self.issue]
        return self.__doc__.strip().splitlines()[0] if self.__doc__ else self.name


class IssueOperator(FuzzOperator):
    """Wrap one of the paper's five issue mutators as a fuzz operator."""

    def __init__(self, issue: int):
        self.issue = issue
        self.name = f"issue{issue}"
        self._mutator = mutator_for_issue(issue)

    def apply(self, test: TestFile, rng: random.Random) -> TestFile:
        mutated = self._mutator.mutate(test, rng)
        if self.issue == 3:
            # a full random replacement owes nothing to the template's
            # declared features; keeping them would fake coverage
            mutated = replace(mutated, features=())
        return mutated


# ---------------------------------------------------------------------------
# clause shuffle
# ---------------------------------------------------------------------------

_PRAGMA_RE = re.compile(r"^(\s*#pragma\s+(?:acc|omp)\b)(.*)$")


def _split_clauses(tail: str) -> list[str] | None:
    """Tokenize a directive tail into head words + clause tokens.

    Returns the token list, or None when the tail has unbalanced
    parentheses (leave such lines alone).
    """
    tokens: list[str] = []
    i, n = 0, len(tail)
    while i < n:
        if tail[i].isspace():
            i += 1
            continue
        start = i
        while i < n and not tail[i].isspace() and tail[i] != "(":
            i += 1
        if i < n and tail[i] == "(":
            depth = 0
            while i < n:
                if tail[i] == "(":
                    depth += 1
                elif tail[i] == ")":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
            if depth != 0:
                return None
        token = tail[start:i].strip()
        if token:
            tokens.append(token)
    return tokens


class ClauseShuffleOperator(FuzzOperator):
    """Permute the clause list of one directive line (order-invariant)."""

    name = "clause-shuffle"
    issue = None

    def apply(self, test: TestFile, rng: random.Random) -> TestFile:
        if test.language == "f90":
            raise MutationError("clause shuffle targets C-family pragmas")
        lines = test.source.splitlines()
        shufflable: list[tuple[int, str, list[str], list[str]]] = []
        for idx, line in enumerate(lines):
            match = _PRAGMA_RE.match(line)
            if not match:
                continue
            tokens = _split_clauses(match.group(2))
            if tokens is None:
                continue
            head: list[str] = []
            clauses: list[str] = []
            for token in tokens:
                word = token.split("(", 1)[0]
                if not clauses and "(" not in token and word in _HEAD_WORDS:
                    head.append(token)
                elif "(" in token or word in _BARE_CLAUSES:
                    clauses.append(token)
                else:
                    head.append(token)
            if len(clauses) >= 2:
                shufflable.append((idx, match.group(1), head, clauses))
        if not shufflable:
            raise MutationError("no directive with >= 2 clauses to shuffle")
        idx, prefix, head, clauses = shufflable[rng.randrange(len(shufflable))]
        order = list(range(len(clauses)))
        # draw until the permutation differs; bounded so a pathological
        # rng cannot loop forever
        for _ in range(8):
            candidate = rng.sample(order, len(order))
            if candidate != order:
                order = candidate
                break
        else:
            order = list(reversed(order))
        shuffled = [clauses[j] for j in order]
        lines[idx] = " ".join([prefix.rstrip()] + head + shuffled)
        return replace(test, source="\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# bound perturbation
# ---------------------------------------------------------------------------

_DEFINE_RE = re.compile(r"^(\s*#define\s+[A-Z][A-Z0-9_]*\s+)(\d+)\s*$")


class BoundPerturbOperator(FuzzOperator):
    """Nudge a ``#define``'d problem size by a small delta.

    The template tests compute their reference with the same macro, so
    the candidate stays self-checking and green — but walks a different
    iteration count, landing in a new steps bucket (fresh coverage).
    """

    name = "bound-perturb"
    issue = None

    def apply(self, test: TestFile, rng: random.Random) -> TestFile:
        if test.language == "f90":
            raise MutationError("bound perturbation targets #define sizes")
        lines = test.source.splitlines()
        spots = [i for i, line in enumerate(lines) if _DEFINE_RE.match(line)]
        if not spots:
            raise MutationError("no integer #define to perturb")
        idx = spots[rng.randrange(len(spots))]
        match = _DEFINE_RE.match(lines[idx])
        value = int(match.group(2))
        delta = rng.choice([-3, -2, -1, 1, 2, 3, 7, 13])
        perturbed = max(2, value + delta)
        if perturbed == value:
            perturbed = value + 1
        lines[idx] = f"{match.group(1)}{perturbed}"
        return replace(test, source="\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# directive-nesting splice
# ---------------------------------------------------------------------------

_FOR_RE = re.compile(r"^\s*for\s*\(")


class NestingSpliceOperator(FuzzOperator):
    """Copy an existing directive line above another ``for`` loop.

    Produces new directive-nesting combinations the templates never
    render — some compile into valid (possibly redundant) schedules,
    some trip the semantic checker; both outcomes are informative.
    """

    name = "nesting-splice"
    issue = None

    def apply(self, test: TestFile, rng: random.Random) -> TestFile:
        if test.language == "f90":
            raise MutationError("nesting splice targets C-family pragmas")
        lines = test.source.splitlines()
        pragmas = [i for i, line in enumerate(lines) if _PRAGMA_RE.match(line)]
        if not pragmas:
            raise MutationError("no directive to splice")
        # loops not already annotated by the line directly above
        targets = [
            i
            for i, line in enumerate(lines)
            if _FOR_RE.match(line) and (i == 0 or not _PRAGMA_RE.match(lines[i - 1]))
        ]
        if not targets:
            raise MutationError("no unannotated loop to receive the splice")
        src = pragmas[rng.randrange(len(pragmas))]
        dst = targets[rng.randrange(len(targets))]
        indent = re.match(r"\s*", lines[dst]).group(0)
        spliced = indent + lines[src].strip()
        lines.insert(dst, spliced)
        return replace(test, source="\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# dead-store injection
# ---------------------------------------------------------------------------

_STATEMENT_RE = re.compile(r";\s*$")


class DeadStoreOperator(FuzzOperator):
    """Inject a block-scoped dead store after an existing statement.

    Semantics-preserving by construction (the stored value is never
    read), but the extra declaration perturbs frame-slot allocation in
    the closure backend and adds steps in both — cheap differential
    pressure on the lowering path.
    """

    name = "dead-store"
    issue = None

    def apply(self, test: TestFile, rng: random.Random) -> TestFile:
        if test.language == "f90":
            raise MutationError("dead-store injection targets C-family code")
        lines = test.source.splitlines()
        spots = [
            i
            for i, line in enumerate(lines)
            if _STATEMENT_RE.search(line)
            and not line.lstrip().startswith("#")
            and "return" not in line
            and "__fz_dead" not in line
        ]
        if not spots:
            raise MutationError("no statement to anchor the dead store")
        idx = spots[rng.randrange(len(spots))]
        indent = re.match(r"\s*", lines[idx]).group(0)
        serial = rng.randrange(1000)
        factor = rng.randint(2, 9)
        lines.insert(
            idx + 1,
            f"{indent}double __fz_dead{serial} = {factor}.0 * {serial % 7 + 1}.0;",
        )
        return replace(test, source="\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def default_operators() -> list[FuzzOperator]:
    """The full operator suite: five issue mutators + four new ones."""
    return [
        IssueOperator(0),
        IssueOperator(1),
        IssueOperator(2),
        IssueOperator(3),
        IssueOperator(4),
        ClauseShuffleOperator(),
        BoundPerturbOperator(),
        NestingSpliceOperator(),
        DeadStoreOperator(),
    ]


def operators_by_name(names: tuple[str, ...] | None = None) -> list[FuzzOperator]:
    """Resolve operator names (None = the default suite)."""
    all_ops = {op.name: op for op in default_operators()}
    if names is None:
        return list(all_ops.values())
    missing = [name for name in names if name not in all_ops]
    if missing:
        raise ValueError(f"unknown operators {missing} (have {sorted(all_ops)})")
    return [all_ops[name] for name in names]
