"""Greedy corpus minimization preserving the coverage frontier.

The campaign's corpus accretes every candidate that was novel *when it
arrived*; later entries often subsume earlier ones.  The minimizer
computes the smallest (greedy set-cover) subset whose union of frontier
keys equals the full corpus's — the classic test-suite reduction the
V&V lineage applies to hand-written suites, here applied to the
machine-grown one.

Deterministic: candidates are considered largest-gain first with ties
broken by (source length, name), so one corpus always minimizes to one
answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.generator import TestFile


@dataclass(frozen=True)
class MinimizeResult:
    """The kept subset plus the bookkeeping a report wants."""

    kept: tuple[str, ...]  # names, in greedy pick order
    dropped: tuple[str, ...]
    covered_keys: int

    @property
    def reduction(self) -> float:
        total = len(self.kept) + len(self.dropped)
        return len(self.dropped) / total if total else 0.0


def minimize_corpus(entries: list[tuple[TestFile, tuple[str, ...]]]) -> MinimizeResult:
    """Greedy set cover over ``(test, frontier keys)`` pairs.

    DIVERGENT-signature entries are always kept: a discrepancy witness
    must survive minimization even if its keys are otherwise covered.
    """
    target: set[str] = set()
    for _, keys in entries:
        target |= set(keys)

    kept: list[str] = []
    covered: set[str] = set()
    remaining = list(entries)

    # pinned witnesses first (deterministic order: name)
    pinned = sorted(
        (test for test, keys in entries if any("sig:DIVERGENT" in k for k in keys)),
        key=lambda test: test.name,
    )
    pinned_names = {test.name for test in pinned}
    for test in pinned:
        kept.append(test.name)
        for candidate, keys in entries:
            if candidate.name == test.name:
                covered |= set(keys)
    remaining = [(t, k) for t, k in remaining if t.name not in pinned_names]

    while covered != target and remaining:
        best = None
        best_gain = -1
        for test, keys in remaining:
            gain = len(set(keys) - covered)
            if gain > best_gain or (
                best is not None
                and gain == best_gain
                and (len(test.source), test.name)
                < (len(best[0].source), best[0].name)
            ):
                best = (test, keys)
                best_gain = gain
        if best is None or best_gain <= 0:
            break
        kept.append(best[0].name)
        covered |= set(best[1])
        remaining = [(t, k) for t, k in remaining if t.name != best[0].name]

    kept_set = set(kept)
    dropped = tuple(
        test.name for test, _ in entries if test.name not in kept_set
    )
    return MinimizeResult(kept=tuple(kept), dropped=dropped, covered_keys=len(covered))
