"""The differential oracle: one candidate, every registered backend.

PR 2 proved the ``walk`` and ``closure`` backends observationally
identical at test time; the campaign turns that one-shot guarantee into
a *continuously* checked invariant, and PR 6 widened the oracle from a
fixed pair to an **N-arm** comparison over
:data:`repro.runtime.interpreter.EXECUTION_BACKENDS` — new backends
(``codegen``) are hammered on machine-grown programs the moment they
register.  Every candidate that compiles runs under every arm, and any
pairwise divergence in the observable tuple (returncode, stdout,
stderr, fault, timed_out, steps) is a first-class :class:`Discrepancy`
finding carrying everything needed to replay it.

Results are content-addressed in the ``fuzz`` cache namespace (the
PR 1/PR 3 store with its flock persistence protocol), keyed on the
toolchain fingerprint, step limit, **arm set** and source text — the
execution backends are *the thing under test* here, so unlike the
pipeline's execute namespace, one fuzz entry stores every arm's result,
and changing the arm set changes the key (a two-arm verdict must never
satisfy a three-arm campaign).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.cache.keys import content_key
from repro.cache.store import ResultCache
from repro.compiler.driver import Compiler
from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.interpreter import EXECUTION_BACKENDS

#: fields of :class:`ExecutionResult` the oracle compares (all of them)
OBSERVABLES = ("returncode", "stdout", "stderr", "fault", "timed_out", "steps")


def _primary_of(results):
    """The arm whose result represents the candidate's behaviour.

    ``closure`` when present (keeps campaign digests and behaviour
    signatures stable across the two-arm → N-arm widening), else the
    first arm that actually ran.
    """
    run = results.get("closure")
    if run is not None:
        return run
    for result in results.values():
        if result is not None:
            return result
    return None


@dataclass(frozen=True)
class Discrepancy:
    """One observable cross-backend divergence — a replayable finding."""

    name: str
    operator: str
    source: str
    fields: tuple[str, ...]
    results: dict  # arm name -> observable dict

    @property
    def walk(self) -> dict:
        return self.results.get("walk", {})

    @property
    def closure(self) -> dict:
        return self.results.get("closure", {})

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "operator": self.operator,
            "source": self.source,
            "fields": list(self.fields),
            "results": {arm: dict(res) for arm, res in self.results.items()},
        }

    @classmethod
    def from_json(cls, data: dict) -> "Discrepancy":
        if "results" in data:
            results = {arm: dict(res) for arm, res in data["results"].items()}
        else:  # pre-N-arm manifests carried exactly two fixed arms
            results = {"walk": dict(data["walk"]), "closure": dict(data["closure"])}
        return cls(
            name=data["name"],
            operator=data["operator"],
            source=data["source"],
            fields=tuple(data["fields"]),
            results=results,
        )

    def render(self) -> str:
        lines = [f"DISCREPANCY {self.name} (operator {self.operator})"]
        for fld in self.fields:
            per_arm = " ".join(
                f"{arm}={res.get(fld)!r}" for arm, res in self.results.items()
            )
            lines.append(f"  {fld}: {per_arm}")
        return "\n".join(lines)


@dataclass
class DifferentialOutcome:
    """What every arm observed for one candidate."""

    compile_rc: int
    diagnostic_codes: tuple[str, ...] = ()
    compile_stderr: str = ""
    results: dict = field(default_factory=dict)  # arm -> ExecutionResult | None
    divergent_fields: tuple[str, ...] = field(default=())

    @property
    def compiled(self) -> bool:
        return self.compile_rc == 0

    @property
    def divergent(self) -> bool:
        return bool(self.divergent_fields)

    @property
    def walk(self) -> ExecutionResult | None:
        return self.results.get("walk")

    @property
    def closure(self) -> ExecutionResult | None:
        return self.results.get("closure")

    @property
    def primary(self) -> ExecutionResult | None:
        """The representative run for signatures, triage and judging."""
        return _primary_of(self.results)

    @property
    def executions(self) -> int:
        """Backend runs this outcome represents (0 on compile failure)."""
        return sum(1 for result in self.results.values() if result is not None)

    def to_json(self) -> dict:
        return {
            "compile_rc": self.compile_rc,
            "diagnostic_codes": list(self.diagnostic_codes),
            "compile_stderr": self.compile_stderr,
            "results": {
                arm: asdict(result) if result else None
                for arm, result in self.results.items()
            },
            "divergent_fields": list(self.divergent_fields),
        }

    @classmethod
    def from_json(cls, data: dict) -> "DifferentialOutcome":
        if "results" in data:
            results = {
                arm: ExecutionResult(**raw) if raw else None
                for arm, raw in data["results"].items()
            }
        else:  # pre-N-arm cache entries carried exactly two fixed arms
            results = {
                "walk": ExecutionResult(**data["walk"]) if data.get("walk") else None,
                "closure": (
                    ExecutionResult(**data["closure"]) if data.get("closure") else None
                ),
            }
        return cls(
            compile_rc=data["compile_rc"],
            diagnostic_codes=tuple(data["diagnostic_codes"]),
            compile_stderr=data.get("compile_stderr", ""),
            results=results,
            divergent_fields=tuple(data.get("divergent_fields", ())),
        )


def divergence(results: dict) -> tuple[str, ...]:
    """Observable fields on which any two arms disagree."""
    runs = [result for result in results.values() if result is not None]
    if len(runs) < 2:
        return ()
    return tuple(
        fld
        for fld in OBSERVABLES
        if len({getattr(run, fld) for run in runs}) > 1
    )


def divergent_fields(walk: ExecutionResult, closure: ExecutionResult) -> tuple[str, ...]:
    """Binary form of :func:`divergence` (kept for the two-arm callers)."""
    return divergence({"walk": walk, "closure": closure})


class DifferentialRunner:
    """Compile once, run under every arm, compare observables pairwise.

    ``arms`` defaults to every backend in
    :data:`~repro.runtime.interpreter.EXECUTION_BACKENDS` — registering
    a backend automatically puts it under differential test.  Not
    thread-safe by contract (each scheduler worker builds its own); the
    cache it fronts *is* thread-safe, so workers share one.
    """

    def __init__(
        self,
        model: str = "acc",
        step_limit: int = 300_000,
        openmp_max_version: float = 4.5,
        cache: ResultCache | None = None,
        arms: tuple[str, ...] | None = None,
    ):
        self.compiler = Compiler(model=model, openmp_max_version=openmp_max_version)
        self.step_limit = step_limit
        self.cache = cache
        self.arms = tuple(arms) if arms is not None else EXECUTION_BACKENDS
        unknown = [arm for arm in self.arms if arm not in EXECUTION_BACKENDS]
        if unknown:
            raise ValueError(
                f"unknown arms {unknown}; registered backends: {EXECUTION_BACKENDS}"
            )
        if len(self.arms) < 2:
            raise ValueError("a differential oracle needs at least two arms")
        self.executors = {
            arm: Executor(step_limit=step_limit, backend=arm) for arm in self.arms
        }
        # named aliases: tests and tools reach a specific arm's executor
        # (e.g. to monkeypatch one backend into lying)
        self.walk = self.executors.get("walk")
        self.closure = self.executors.get("closure")

    def fingerprint(self) -> str:
        return (
            f"fuzz-diff:{self.compiler.fingerprint()}:{self.step_limit}"
            f":{'+'.join(self.arms)}"
        )

    def key_for(self, name: str, source: str) -> str:
        return content_key("fuzz-differential", self.fingerprint(), name, source)

    def run(self, test) -> DifferentialOutcome:
        """The differential outcome for one candidate (cached by content).

        The candidate *name* is part of the key: compile stderr embeds
        the filename, and the triage judge's prompt (hence the campaign
        digest) reads it — serving one candidate's stderr to a renamed
        twin would make the digest depend on cache warmth.  Campaign
        candidate names are deterministic, so replays and warm reruns
        still hit.
        """
        if self.cache is not None:
            key = self.key_for(test.name, test.source)
            cached = self.cache.get(key)
            if cached is not None:
                return DifferentialOutcome.from_json(cached)
        outcome = self._compute(test)
        if self.cache is not None:
            self.cache.put(key, outcome.to_json())
        return outcome

    def _compute(self, test) -> DifferentialOutcome:
        compiled = self.compiler.compile(test.source, test.name)
        if not compiled.ok:
            return DifferentialOutcome(
                compile_rc=compiled.returncode,
                diagnostic_codes=tuple(compiled.diagnostic_codes),
                compile_stderr=compiled.stderr,
            )
        results = {arm: self.executors[arm].run(compiled) for arm in self.arms}
        return DifferentialOutcome(
            compile_rc=compiled.returncode,
            diagnostic_codes=tuple(compiled.diagnostic_codes),
            compile_stderr=compiled.stderr,
            results=results,
            divergent_fields=divergence(results),
        )


def discrepancy_from(test, operator: str, outcome: DifferentialOutcome) -> Discrepancy:
    """Package a divergent outcome as a finding."""
    return Discrepancy(
        name=test.name,
        operator=operator,
        source=test.source,
        fields=outcome.divergent_fields,
        results={
            arm: asdict(result) if result else {}
            for arm, result in outcome.results.items()
        },
    )
