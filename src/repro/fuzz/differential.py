"""The differential oracle: one candidate, both execution backends.

PR 2 proved the ``walk`` and ``closure`` backends observationally
identical at test time; the campaign turns that one-shot guarantee into
a *continuously* checked invariant.  Every candidate that compiles runs
under both backends, and any divergence in the observable tuple
(returncode, stdout, stderr, fault, timed_out, steps) is a first-class
:class:`Discrepancy` finding carrying everything needed to replay it.

Results are content-addressed in the ``fuzz`` cache namespace (the
PR 1/PR 3 store with its flock persistence protocol), keyed on the
toolchain fingerprint, step limit and source text — the execution
backend is *the thing under test* here, so unlike the pipeline's
execute namespace, one fuzz entry stores both backends' results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.cache.keys import content_key
from repro.cache.store import ResultCache
from repro.compiler.driver import Compiler
from repro.runtime.executor import ExecutionResult, Executor

#: fields of :class:`ExecutionResult` the oracle compares (all of them)
OBSERVABLES = ("returncode", "stdout", "stderr", "fault", "timed_out", "steps")


@dataclass(frozen=True)
class Discrepancy:
    """One observable walk/closure divergence — a replayable finding."""

    name: str
    operator: str
    source: str
    fields: tuple[str, ...]
    walk: dict
    closure: dict

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "operator": self.operator,
            "source": self.source,
            "fields": list(self.fields),
            "walk": self.walk,
            "closure": self.closure,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Discrepancy":
        return cls(
            name=data["name"],
            operator=data["operator"],
            source=data["source"],
            fields=tuple(data["fields"]),
            walk=dict(data["walk"]),
            closure=dict(data["closure"]),
        )

    def render(self) -> str:
        lines = [f"DISCREPANCY {self.name} (operator {self.operator})"]
        for fld in self.fields:
            lines.append(
                f"  {fld}: walk={self.walk.get(fld)!r} closure={self.closure.get(fld)!r}"
            )
        return "\n".join(lines)


@dataclass
class DifferentialOutcome:
    """What both backends observed for one candidate."""

    compile_rc: int
    diagnostic_codes: tuple[str, ...] = ()
    compile_stderr: str = ""
    walk: ExecutionResult | None = None
    closure: ExecutionResult | None = None
    divergent_fields: tuple[str, ...] = field(default=())

    @property
    def compiled(self) -> bool:
        return self.compile_rc == 0

    @property
    def divergent(self) -> bool:
        return bool(self.divergent_fields)

    @property
    def executions(self) -> int:
        """Backend runs this outcome represents (0 on compile failure)."""
        return (self.walk is not None) + (self.closure is not None)

    def to_json(self) -> dict:
        return {
            "compile_rc": self.compile_rc,
            "diagnostic_codes": list(self.diagnostic_codes),
            "compile_stderr": self.compile_stderr,
            "walk": asdict(self.walk) if self.walk else None,
            "closure": asdict(self.closure) if self.closure else None,
            "divergent_fields": list(self.divergent_fields),
        }

    @classmethod
    def from_json(cls, data: dict) -> "DifferentialOutcome":
        return cls(
            compile_rc=data["compile_rc"],
            diagnostic_codes=tuple(data["diagnostic_codes"]),
            compile_stderr=data.get("compile_stderr", ""),
            walk=ExecutionResult(**data["walk"]) if data.get("walk") else None,
            closure=ExecutionResult(**data["closure"]) if data.get("closure") else None,
            divergent_fields=tuple(data.get("divergent_fields", ())),
        )


def divergent_fields(walk: ExecutionResult, closure: ExecutionResult) -> tuple[str, ...]:
    """Observable fields on which the two backends disagree."""
    return tuple(
        fld for fld in OBSERVABLES if getattr(walk, fld) != getattr(closure, fld)
    )


class DifferentialRunner:
    """Compile once, run under both backends, compare observables.

    Not thread-safe by contract (each scheduler worker builds its own);
    the cache it fronts *is* thread-safe, so workers share one.
    """

    def __init__(
        self,
        model: str = "acc",
        step_limit: int = 300_000,
        openmp_max_version: float = 4.5,
        cache: ResultCache | None = None,
    ):
        self.compiler = Compiler(model=model, openmp_max_version=openmp_max_version)
        self.step_limit = step_limit
        self.cache = cache
        self.walk = Executor(step_limit=step_limit, backend="walk")
        self.closure = Executor(step_limit=step_limit, backend="closure")

    def fingerprint(self) -> str:
        return f"fuzz-diff:{self.compiler.fingerprint()}:{self.step_limit}"

    def key_for(self, name: str, source: str) -> str:
        return content_key("fuzz-differential", self.fingerprint(), name, source)

    def run(self, test) -> DifferentialOutcome:
        """The differential outcome for one candidate (cached by content).

        The candidate *name* is part of the key: compile stderr embeds
        the filename, and the triage judge's prompt (hence the campaign
        digest) reads it — serving one candidate's stderr to a renamed
        twin would make the digest depend on cache warmth.  Campaign
        candidate names are deterministic, so replays and warm reruns
        still hit.
        """
        if self.cache is not None:
            key = self.key_for(test.name, test.source)
            cached = self.cache.get(key)
            if cached is not None:
                return DifferentialOutcome.from_json(cached)
        outcome = self._compute(test)
        if self.cache is not None:
            self.cache.put(key, outcome.to_json())
        return outcome

    def _compute(self, test) -> DifferentialOutcome:
        compiled = self.compiler.compile(test.source, test.name)
        if not compiled.ok:
            return DifferentialOutcome(
                compile_rc=compiled.returncode,
                diagnostic_codes=tuple(compiled.diagnostic_codes),
                compile_stderr=compiled.stderr,
            )
        walk_result = self.walk.run(compiled)
        closure_result = self.closure.run(compiled)
        return DifferentialOutcome(
            compile_rc=compiled.returncode,
            diagnostic_codes=tuple(compiled.diagnostic_codes),
            compile_stderr=compiled.stderr,
            walk=walk_result,
            closure=closure_result,
            divergent_fields=divergent_fields(walk_result, closure_result),
        )


def discrepancy_from(test, operator: str, outcome: DifferentialOutcome) -> Discrepancy:
    """Package a divergent outcome as a finding."""
    return Discrepancy(
        name=test.name,
        operator=operator,
        source=test.source,
        fields=outcome.divergent_fields,
        walk=asdict(outcome.walk) if outcome.walk else {},
        closure=asdict(outcome.closure) if outcome.closure else {},
    )
