"""Judgment extraction from LLM completions.

The paper's protocol requires the exact phrase ``FINAL JUDGEMENT:
valid`` / ``invalid`` (or ``correct`` / ``incorrect`` for the direct
prompt).  Real completions are messy, so the parser implements a
tolerance ladder:

1. exact phrase match (the contract);
2. case-insensitive / ``JUDGMENT``-spelling / punctuation-tolerant
   match (recoverable deviations, flagged as non-strict);
3. last-resort keyword scan of the final lines.

Callers can see which rung matched and decide whether to re-prompt.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass


class Verdict(enum.Enum):
    VALID = "valid"
    INVALID = "invalid"

    @property
    def as_bool(self) -> bool:
        return self is Verdict.VALID


@dataclass(frozen=True)
class ParsedJudgment:
    verdict: Verdict | None
    strict: bool  # True iff the exact contracted phrase was present
    matched_text: str = ""

    @property
    def ok(self) -> bool:
        return self.verdict is not None


_POSITIVE_WORDS = ("valid", "correct")
_NEGATIVE_WORDS = ("invalid", "incorrect")

_STRICT_RE = re.compile(
    r"FINAL JUDGEMENT:\s*(valid|invalid|correct|incorrect)\b"
)
_LOOSE_RE = re.compile(
    r"final\s+judg(?:e)?ment\s*[:\-–]?\s*(valid|invalid|correct|incorrect)\b",
    re.IGNORECASE,
)


def parse_judgment(response: str) -> ParsedJudgment:
    """Extract the verdict from a completion, most-tolerant last."""
    match = None
    for m in _STRICT_RE.finditer(response):
        match = m  # keep the last occurrence: models sometimes restate
    if match is not None:
        return ParsedJudgment(_word_to_verdict(match.group(1)), strict=True, matched_text=match.group(0))

    match = None
    for m in _LOOSE_RE.finditer(response):
        match = m
    if match is not None:
        return ParsedJudgment(
            _word_to_verdict(match.group(1)), strict=False, matched_text=match.group(0)
        )

    # keyword scan of the closing lines
    tail = "\n".join(response.strip().splitlines()[-3:]).lower()
    # negatives first: 'invalid' contains 'valid'
    for word in _NEGATIVE_WORDS:
        if re.search(rf"\b{word}\b", tail):
            return ParsedJudgment(Verdict.INVALID, strict=False, matched_text=word)
    for word in _POSITIVE_WORDS:
        if re.search(rf"\b{word}\b", tail):
            return ParsedJudgment(Verdict.VALID, strict=False, matched_text=word)
    return ParsedJudgment(None, strict=False)


def _word_to_verdict(word: str) -> Verdict:
    return Verdict.VALID if word.lower() in _POSITIVE_WORDS else Verdict.INVALID
