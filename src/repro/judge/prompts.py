"""Prompt construction mirroring the paper's Listings 2-4.

Three prompt builders:

* :func:`direct_prompt` — Listing 3, the tool-less direct-analysis
  prompt (vocabulary ``correct``/``incorrect``);
* :func:`agent_direct_prompt` — Listing 2, criteria plus tool outputs
  (vocabulary ``valid``/``invalid``);
* :func:`agent_indirect_prompt` — Listing 4, describe-then-judge with
  tool outputs (vocabulary ``valid``/``invalid``).

The exact marker strings ("Here is the code:", "Compiler return code:")
are part of the experiment contract: the response parser and the
simulated model both key off them, just as the paper's harness keyed
off its own prompt text.
"""

from __future__ import annotations

from repro.judge.criteria import FLAVOR_NAMES, criteria_text


def direct_prompt(code: str, flavor: str) -> str:
    """Listing 3: direct analysis, no tools."""
    name = FLAVOR_NAMES[flavor]
    return (
        f"Review the following {name} code and evaluate it based on the "
        f"following criteria:\n\n"
        f"{criteria_text(flavor)}\n"
        f"Based on these criteria, evaluate the code in a brief summary, then "
        f'respond with precisely "FINAL JUDGEMENT: correct" (or incorrect).\n'
        f'You MUST include the exact phrase "FINAL JUDGEMENT: correct" in your '
        f"evaluation if you believe the code is correct. Otherwise, you must "
        f'include the phrase "FINAL JUDGEMENT: incorrect" in your evaluation.\n'
        f"Here is the code:\n"
        f"{code}"
    )


def _tool_info_block(
    compile_rc: int,
    compile_stderr: str,
    compile_stdout: str,
    run_rc: int | None,
    run_stderr: str | None,
    run_stdout: str | None,
    flavor: str,
) -> str:
    name = FLAVOR_NAMES[flavor]
    lines = [
        f"When compiled with a compliant {name} compiler, the below code causes "
        f"the following outputs:",
        f"Compiler return code: {compile_rc}",
        f"Compiler STDERR: {compile_stderr}",
        f"Compiler STDOUT: {compile_stdout}",
    ]
    if run_rc is not None:
        lines.extend(
            [
                "When the compiled code is run, it gives the following results:",
                f"Return code: {run_rc}",
                f"STDERR: {run_stderr or ''}",
                f"STDOUT: {run_stdout or ''}",
            ]
        )
    else:
        lines.append("The code did not compile, so it could not be run.")
    return "\n".join(lines)


def agent_direct_prompt(
    code: str,
    flavor: str,
    compile_rc: int,
    compile_stderr: str,
    compile_stdout: str,
    run_rc: int | None,
    run_stderr: str | None,
    run_stdout: str | None,
) -> str:
    """Listing 2: criteria + tool outputs (LLMJ 1)."""
    return (
        f"{criteria_text(flavor)}\n"
        f"Based on these criteria, evaluate the code and determine if it is a "
        f"valid or invalid test. Think step by step.\n"
        f'You MUST include the exact phrase, "FINAL JUDGEMENT: valid" in your '
        f"response if you deem the test to be valid.\n"
        f'If you deem the test to be invalid, include the exact phrase '
        f'"FINAL JUDGEMENT: invalid" in your response instead.\n'
        f"Here is some information about the code to help you.\n"
        f"{_tool_info_block(compile_rc, compile_stderr, compile_stdout, run_rc, run_stderr, run_stdout, flavor)}\n"
        f"Here is the code:\n"
        f"{code}"
    )


def agent_indirect_prompt(
    code: str,
    flavor: str,
    compile_rc: int,
    compile_stderr: str,
    compile_stdout: str,
    run_rc: int | None,
    run_stderr: str | None,
    run_stdout: str | None,
) -> str:
    """Listing 4: describe-then-judge + tool outputs (LLMJ 2)."""
    name = FLAVOR_NAMES[flavor]
    return (
        f"Describe what the below {name} program will do when run. Think step by step.\n"
        f"Here is some information about the code to help you; you do not have "
        f"to compile or run the code yourself.\n"
        f"{_tool_info_block(compile_rc, compile_stderr, compile_stdout, run_rc, run_stderr, run_stdout, flavor)}\n"
        f"Using this information, describe in full detail how the below code "
        f"works, what the below code will do when run, and suggest why the "
        f"below code might have been written this way.\n"
        f"Then, based on that description, determine whether the described "
        f"program would be a valid or invalid compiler test for {name} compilers.\n"
        f'You MUST include the exact phrase "FINAL JUDGEMENT: valid" in your '
        f"final response if you believe that your description of the below "
        f"{name} code describes a valid compiler test; otherwise, your final "
        f'response MUST include the exact phrase "FINAL JUDGEMENT: invalid".\n'
        f"Here is the code for you to analyze:\n"
        f"{code}"
    )
