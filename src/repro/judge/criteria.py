"""The evaluation criteria of Listing 1, parameterized by model flavor."""

from __future__ import annotations

FLAVOR_NAMES = {"acc": "OpenACC", "omp": "OpenMP"}


def criteria_text(flavor: str) -> str:
    """The six criteria exactly as the paper prompts them (Listing 1)."""
    name = FLAVOR_NAMES[flavor]
    return (
        f"Syntax: Ensure all {name} directives and pragmas are syntactically correct.\n"
        f"Directive Appropriateness: Check if the right directives are used for the "
        f"intended parallel computations.\n"
        f"Clause Correctness: Verify that all clauses within the directives are "
        f"correctly used according to {name} specifications.\n"
        f"Memory Management: Assess the accuracy of data movement between CPU and GPU.\n"
        f"Compliance: Ensure the code adheres to the latest {name} specifications "
        f"and best practices.\n"
        f"Logic: Verify that the logic of the test (e.g. performing the same "
        f"computation in serial and parallel and comparing) is correct."
    )
