"""Judge front-ends: prompt, generate, parse, retry.

:class:`DirectLLMJ` implements the paper's Part One judge (no tools);
:class:`AgentLLMJ` implements LLMJ 1 (``kind="direct"``) and LLMJ 2
(``kind="indirect"``).  A completion that does not contain the
contracted phrase is re-prompted up to ``max_retries`` times; if every
attempt is malformed the tolerant parse of the last attempt is used,
and the result records how the verdict was obtained.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.generator import TestFile
from repro.judge.agent import ToolReport, ToolRunner
from repro.judge.parser import ParsedJudgment, Verdict, parse_judgment
from repro.judge.prompts import agent_direct_prompt, agent_indirect_prompt, direct_prompt
from repro.llm.model import DeepSeekCoderSim


@dataclass(frozen=True)
class JudgeResult:
    """One judged file."""

    test_name: str
    verdict: Verdict | None
    response: str
    prompt_mode: str
    attempts: int = 1
    strict_parse: bool = True
    tool_report: ToolReport | None = None
    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def says_valid(self) -> bool:
        return self.verdict is Verdict.VALID

    @property
    def says_invalid(self) -> bool:
        return self.verdict is Verdict.INVALID

    @property
    def simulated_seconds(self) -> float:
        """Service time of this judgment under the LLM cost model."""
        from repro.llm.model import simulated_call_seconds

        return simulated_call_seconds(self.prompt_tokens, self.completion_tokens)

    # ------------------------------------------------------------------
    # JSON round-trip (cache disk persistence)
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        report = self.tool_report
        return {
            "test_name": self.test_name,
            "verdict": self.verdict.value if self.verdict is not None else None,
            "response": self.response,
            "prompt_mode": self.prompt_mode,
            "attempts": self.attempts,
            "strict_parse": self.strict_parse,
            "tool_report": None if report is None else {
                "compile_rc": report.compile_rc,
                "compile_stderr": report.compile_stderr,
                "compile_stdout": report.compile_stdout,
                "run_rc": report.run_rc,
                "run_stderr": report.run_stderr,
                "run_stdout": report.run_stdout,
                "diagnostic_codes": list(report.diagnostic_codes),
            },
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
        }

    @classmethod
    def from_json(cls, data: dict) -> "JudgeResult":
        raw_report = data.get("tool_report")
        report = None
        if raw_report is not None:
            report = ToolReport(
                compile_rc=raw_report["compile_rc"],
                compile_stderr=raw_report["compile_stderr"],
                compile_stdout=raw_report["compile_stdout"],
                run_rc=raw_report["run_rc"],
                run_stderr=raw_report["run_stderr"],
                run_stdout=raw_report["run_stdout"],
                diagnostic_codes=tuple(raw_report["diagnostic_codes"]),
            )
        verdict = data["verdict"]
        return cls(
            test_name=data["test_name"],
            verdict=None if verdict is None else Verdict(verdict),
            response=data["response"],
            prompt_mode=data["prompt_mode"],
            attempts=data["attempts"],
            strict_parse=data["strict_parse"],
            tool_report=report,
            prompt_tokens=data["prompt_tokens"],
            completion_tokens=data["completion_tokens"],
        )


class _JudgeBase:
    def __init__(self, model: DeepSeekCoderSim, flavor: str, max_retries: int = 2):
        if flavor not in ("acc", "omp"):
            raise ValueError(f"flavor must be 'acc' or 'omp', got {flavor!r}")
        self.model = model
        self.flavor = flavor
        self.max_retries = max_retries

    def _generate_and_parse(self, prompt: str) -> tuple[ParsedJudgment, str, int, int, int]:
        parsed = ParsedJudgment(None, strict=False)
        response = ""
        attempts = 0
        prompt_tokens = 0
        completion_tokens = 0
        for attempt in range(self.max_retries + 1):
            attempts = attempt + 1
            response = self.model.generate(prompt, attempt=attempt)
            prompt_tokens += self.model.tokenizer.count(prompt)
            completion_tokens += self.model.tokenizer.count(response)
            parsed = parse_judgment(response)
            if parsed.ok and parsed.strict:
                break
        return parsed, response, attempts, prompt_tokens, completion_tokens


class DirectLLMJ(_JudgeBase):
    """Part One's tool-less judge (direct-analysis prompt, Listing 3)."""

    mode = "direct"

    def fingerprint(self) -> str:
        """Configuration identity for content-addressed caching."""
        return (
            f"direct:{self.flavor}:{self.model.seed}"
            f":{self.model.max_context_tokens}:{self.max_retries}"
        )

    def judge(self, test: TestFile) -> JudgeResult:
        prompt = direct_prompt(test.source, self.flavor)
        parsed, response, attempts, ptok, ctok = self._generate_and_parse(prompt)
        return JudgeResult(
            test_name=test.name,
            verdict=parsed.verdict,
            response=response,
            prompt_mode=self.mode,
            attempts=attempts,
            strict_parse=parsed.strict,
            prompt_tokens=ptok,
            completion_tokens=ctok,
        )


class AgentLLMJ(_JudgeBase):
    """Agent-based judge: tool outputs embedded in the prompt.

    ``kind="direct"`` is the paper's LLMJ 1, ``kind="indirect"`` LLMJ 2.
    """

    def __init__(
        self,
        model: DeepSeekCoderSim,
        flavor: str,
        kind: str = "direct",
        tools: ToolRunner | None = None,
        max_retries: int = 2,
        execution_backend: str = "closure",
    ):
        super().__init__(model, flavor, max_retries)
        if kind not in ("direct", "indirect"):
            raise ValueError(f"kind must be 'direct' or 'indirect', got {kind!r}")
        self.kind = kind
        self.tools = tools or ToolRunner(flavor, execution_backend=execution_backend)

    @property
    def mode(self) -> str:
        return f"agent-{self.kind}"

    def fingerprint(self) -> str:
        """Configuration identity for content-addressed caching."""
        return (
            f"agent:{self.kind}:{self.flavor}:{self.model.seed}"
            f":{self.model.max_context_tokens}:{self.max_retries}"
        )

    def build_prompt(self, test: TestFile, report: ToolReport) -> str:
        builder = agent_direct_prompt if self.kind == "direct" else agent_indirect_prompt
        return builder(
            code=test.source,
            flavor=self.flavor,
            compile_rc=report.compile_rc,
            compile_stderr=report.compile_stderr,
            compile_stdout=report.compile_stdout,
            run_rc=report.run_rc,
            run_stderr=report.run_stderr,
            run_stdout=report.run_stdout,
        )

    def judge(self, test: TestFile, report: ToolReport | None = None) -> JudgeResult:
        """Judge one file, collecting tool info if not supplied."""
        if report is None:
            report = self.tools.collect(test)
        prompt = self.build_prompt(test, report)
        parsed, response, attempts, ptok, ctok = self._generate_and_parse(prompt)
        return JudgeResult(
            test_name=test.name,
            verdict=parsed.verdict,
            response=response,
            prompt_mode=self.mode,
            attempts=attempts,
            strict_parse=parsed.strict,
            tool_report=report,
            prompt_tokens=ptok,
            completion_tokens=ctok,
        )
