"""Tool use for the agent-based judge: compile and run the candidate.

:class:`ToolRunner` is the "environment" of Figure 1: it invokes the
simulated toolchain and execution substrate and packages their
observables into a :class:`ToolReport` the prompt builders embed.
Output fields are size-capped the way a prompt budget forces in
practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.driver import CompileResult, Compiler
from repro.corpus.generator import TestFile
from repro.runtime.executor import ExecutionResult, Executor

MAX_TOOL_TEXT = 2000  # characters of stderr/stdout embedded per section


@dataclass(frozen=True)
class ToolReport:
    """Everything the agent collected about one candidate test."""

    compile_rc: int
    compile_stderr: str
    compile_stdout: str
    run_rc: int | None
    run_stderr: str | None
    run_stdout: str | None
    diagnostic_codes: tuple[str, ...] = ()

    @property
    def compiled(self) -> bool:
        return self.compile_rc == 0

    @property
    def ran_clean(self) -> bool:
        return self.run_rc == 0

    @classmethod
    def from_results(
        cls, compiled: CompileResult, executed: ExecutionResult | None
    ) -> "ToolReport":
        return cls(
            compile_rc=compiled.returncode,
            compile_stderr=_cap(compiled.stderr),
            compile_stdout=_cap(compiled.stdout),
            run_rc=executed.returncode if executed is not None else None,
            run_stderr=_cap(executed.stderr) if executed is not None else None,
            run_stdout=_cap(executed.stdout) if executed is not None else None,
            diagnostic_codes=tuple(compiled.diagnostic_codes),
        )


def _cap(text: str) -> str:
    if len(text) <= MAX_TOOL_TEXT:
        return text
    return text[:MAX_TOOL_TEXT] + "\n... (truncated)"


class ToolRunner:
    """Compile-and-execute tooling bound to one model flavor."""

    def __init__(
        self,
        flavor: str,
        openmp_max_version: float = 4.5,
        step_limit: int = 3_000_000,
        environment=None,
        execution_backend: str = "closure",
    ):
        self.flavor = flavor
        self.compiler = Compiler(model=flavor, openmp_max_version=openmp_max_version)
        self.executor = Executor(step_limit=step_limit, backend=execution_backend)
        self.environment = environment

    def compile(self, test: TestFile) -> CompileResult:
        compiled = self.compiler.compile(test.source, test.name)
        if self.environment is not None:
            compiled = self.environment.apply(test, compiled)
        return compiled

    def execute(self, compiled: CompileResult) -> ExecutionResult:
        return self.executor.run(compiled)

    def collect(self, test: TestFile) -> ToolReport:
        """Run both tools, skipping execution when compilation fails."""
        compiled = self.compile(test)
        executed = self.execute(compiled) if compiled.ok else None
        return ToolReport.from_results(compiled, executed)
