"""LLM-as-a-Judge (LLMJ): prompts, parsing, agents, judge front-ends.

Implements the paper's three judge configurations:

* :class:`~repro.judge.llmj.DirectLLMJ` — Part One's tool-less judge
  using the direct-analysis prompt (Listing 3);
* :class:`~repro.judge.llmj.AgentLLMJ` with ``kind="direct"`` — LLMJ 1,
  the agent-based judge with the criteria prompt plus tool outputs
  (Listing 2);
* :class:`~repro.judge.llmj.AgentLLMJ` with ``kind="indirect"`` —
  LLMJ 2, the describe-then-judge prompt (Listing 4).
"""

from repro.judge.agent import ToolReport, ToolRunner
from repro.judge.llmj import AgentLLMJ, DirectLLMJ, JudgeResult
from repro.judge.parser import ParsedJudgment, Verdict, parse_judgment

__all__ = [
    "AgentLLMJ",
    "DirectLLMJ",
    "JudgeResult",
    "ParsedJudgment",
    "Verdict",
    "parse_judgment",
    "ToolReport",
    "ToolRunner",
]
