"""A small C preprocessor over the lexer's token stream.

Supports what the V&V corpus uses:

* ``#include <...>`` / ``#include "..."`` against a table of known
  system headers (unknown headers are a fatal driver error, exactly as
  with a real toolchain);
* object-like ``#define`` / ``#undef`` with recursive substitution;
* conditional compilation: ``#ifdef``, ``#ifndef``, ``#if`` with the
  restricted expressions ``defined(X)``, integer comparison of macro
  values, ``#else``, ``#elif``, ``#endif``;
* ``#pragma`` lines are passed through untouched for the directive
  parser;
* ``#error`` emits a user diagnostic.

The output is a flat token list with all HASH_LINE tokens removed except
``#pragma`` lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.diagnostics import DiagnosticEngine, SourceLocation
from repro.compiler.lexer import Lexer, Token, TokenKind

#: Headers the simulated toolchain ships.  ``openacc.h`` and ``omp.h``
#: define the runtime APIs the interpreter implements.
KNOWN_HEADERS = frozenset(
    {
        "stdio.h", "stdlib.h", "math.h", "string.h", "stdbool.h", "assert.h",
        "time.h", "limits.h", "float.h", "stdint.h", "stddef.h", "ctype.h",
        "openacc.h", "omp.h", "acc_testsuite.h", "omp_testsuite.h",
        "iostream", "cstdlib", "cstdio", "cmath", "cstring", "vector",
    }
)

#: Macros the testsuite headers provide (value, as source text).
BUILTIN_HEADER_MACROS = {
    "acc_testsuite.h": {
        "SEED": "1234",
        "LOOPCOUNT": "1024",
        "PRECISION": "0.000000001",
    },
    "omp_testsuite.h": {
        "SEED": "1234",
        "LOOPCOUNT": "1024",
        "PRECISION": "0.000000001",
        "NUM_THREADS": "8",
    },
}


@dataclass
class MacroDef:
    name: str
    replacement: list[Token]
    location: SourceLocation | None = None


@dataclass
class PreprocessResult:
    tokens: list[Token]
    includes: list[str] = field(default_factory=list)
    defines: dict[str, str] = field(default_factory=dict)


class Preprocessor:
    """Expand one translation unit's token stream."""

    def __init__(self, diags: DiagnosticEngine, language_macros: dict[str, str] | None = None):
        self.diags = diags
        self.macros: dict[str, MacroDef] = {}
        # predefined macros, e.g. _OPENACC / _OPENMP version markers
        for name, value in (language_macros or {}).items():
            self._define_text(name, value)

    # -- macro helpers -----------------------------------------------------

    def _define_text(self, name: str, value: str) -> None:
        toks = [
            t
            for t in Lexer(value, "<builtin>").tokenize()
            if t.kind is not TokenKind.EOF
        ]
        self.macros[name] = MacroDef(name, toks)

    def _substitute(self, token: Token, depth: int = 0) -> list[Token]:
        if depth > 16 or token.kind is not TokenKind.IDENT or token.text not in self.macros:
            return [token]
        out: list[Token] = []
        for rep in self.macros[token.text].replacement:
            relocated = Token(rep.kind, rep.text, token.location)
            out.extend(self._substitute(relocated, depth + 1))
        return out

    # -- directive handling --------------------------------------------------

    def run(self, tokens: list[Token]) -> PreprocessResult:
        result = PreprocessResult(tokens=[])
        # Conditional stack entries: (taking, taken_any) booleans.
        cond_stack: list[list[bool]] = []

        def active() -> bool:
            return all(frame[0] for frame in cond_stack)

        for tok in tokens:
            if tok.kind is TokenKind.HASH_LINE:
                line = tok.text.lstrip("#").strip()
                parts = line.split(None, 1)
                keyword = parts[0] if parts else ""
                rest = parts[1].strip() if len(parts) > 1 else ""
                if keyword == "ifdef":
                    taking = active() and rest.split()[0] in self.macros if rest else False
                    cond_stack.append([taking, taking])
                elif keyword == "ifndef":
                    name = rest.split()[0] if rest else ""
                    taking = active() and name not in self.macros
                    cond_stack.append([taking, taking])
                elif keyword == "if":
                    taking = active() and self._eval_condition(rest)
                    cond_stack.append([taking, taking])
                elif keyword == "elif":
                    if not cond_stack:
                        self.diags.error("#elif without #if", tok.location, code="pp-mismatch")
                        continue
                    frame = cond_stack[-1]
                    parent_active = all(f[0] for f in cond_stack[:-1])
                    frame[0] = parent_active and not frame[1] and self._eval_condition(rest)
                    frame[1] = frame[1] or frame[0]
                elif keyword == "else":
                    if not cond_stack:
                        self.diags.error("#else without #if", tok.location, code="pp-mismatch")
                        continue
                    frame = cond_stack[-1]
                    parent_active = all(f[0] for f in cond_stack[:-1])
                    frame[0] = parent_active and not frame[1]
                    frame[1] = True
                elif keyword == "endif":
                    if not cond_stack:
                        self.diags.error("#endif without #if", tok.location, code="pp-mismatch")
                    else:
                        cond_stack.pop()
                elif not active():
                    continue
                elif keyword == "include":
                    self._handle_include(rest, tok.location, result)
                elif keyword == "define":
                    self._handle_define(rest, tok.location, result)
                elif keyword == "undef":
                    self.macros.pop(rest.split()[0], None) if rest else None
                elif keyword == "pragma":
                    result.tokens.append(tok)
                elif keyword == "error":
                    self.diags.error(f"#error {rest}", tok.location, code="pp-error")
                elif keyword == "":
                    pass  # null directive '#'
                else:
                    self.diags.warn(
                        f"ignoring unsupported preprocessor directive #{keyword}",
                        tok.location,
                        code="pp-unsupported",
                    )
                continue
            if not active():
                continue
            if tok.kind is TokenKind.IDENT:
                result.tokens.extend(self._substitute(tok))
            else:
                result.tokens.append(tok)

        if cond_stack:
            self.diags.error("unterminated conditional directive (#if without #endif)", code="pp-mismatch")
        result.defines = {
            name: " ".join(t.text for t in macro.replacement)
            for name, macro in self.macros.items()
        }
        return result

    def _handle_include(self, rest: str, loc: SourceLocation, result: PreprocessResult) -> None:
        header = rest.strip()
        if header.startswith("<") and header.endswith(">"):
            header = header[1:-1]
        elif header.startswith('"') and header.endswith('"'):
            header = header[1:-1]
        else:
            self.diags.error(f"malformed #include: {rest!r}", loc, code="pp-include")
            return
        result.includes.append(header)
        if header not in KNOWN_HEADERS:
            self.diags.fatal(f"'{header}' file not found", loc, code="missing-header")
            return
        for name, value in BUILTIN_HEADER_MACROS.get(header, {}).items():
            if name not in self.macros:
                self._define_text(name, value)

    def _handle_define(self, rest: str, loc: SourceLocation, result: PreprocessResult) -> None:
        if not rest:
            self.diags.error("empty #define", loc, code="pp-define")
            return
        parts = rest.split(None, 1)
        name = parts[0]
        if "(" in name:
            # function-like macro: tolerated but not expanded (corpus avoids them)
            self.diags.warn(
                f"function-like macro {name.split('(')[0]!r} is not expanded by this front-end",
                loc,
                code="pp-funcmacro",
            )
            return
        value = parts[1] if len(parts) > 1 else "1"
        toks = [
            Token(t.kind, t.text, loc)
            for t in Lexer(value, loc.filename).tokenize()
            if t.kind is not TokenKind.EOF
        ]
        self.macros[name] = MacroDef(name, toks, loc)

    def _eval_condition(self, expr: str) -> bool:
        """Evaluate a restricted #if expression."""
        text = expr.strip()
        # defined(X) / defined X
        import re

        def repl_defined(match: "re.Match[str]") -> str:
            name = match.group(1) or match.group(2)
            return "1" if name in self.macros else "0"

        text = re.sub(r"defined\s*\(\s*(\w+)\s*\)|defined\s+(\w+)", repl_defined, text)
        # substitute remaining macros with their text (or 0)
        def repl_ident(match: "re.Match[str]") -> str:
            name = match.group(0)
            macro = self.macros.get(name)
            if macro is None:
                return "0"
            return " ".join(t.text for t in macro.replacement) or "0"

        text = re.sub(r"[A-Za-z_]\w*", repl_ident, text)
        text = text.replace("&&", " and ").replace("||", " or ").replace("!", " not ")
        text = text.replace(" not =", " !=")  # undo '!=' damage
        try:
            return bool(eval(text, {"__builtins__": {}}, {}))  # noqa: S307 - sanitized integer expr
        except Exception:
            return False
