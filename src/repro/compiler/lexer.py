"""Tokenizer for the C/C++ subset used by directive-based V&V tests.

The lexer understands:

* identifiers / keywords, integer and floating literals (decimal, hex,
  suffixes), string and character literals with escapes;
* the full C operator/punctuator set used by the corpus;
* ``//`` and ``/* */`` comments (skipped);
* preprocessor lines, which are captured as :attr:`TokenKind.HASH_LINE`
  tokens so the preprocessor and pragma parser can consume them;
* line continuations (``\\`` at end of line), required for multi-line
  ``#pragma`` directives.

Defects are reported through a :class:`~repro.compiler.diagnostics.
DiagnosticEngine`; lexing is error-recovering (a bad character yields a
diagnostic and is skipped) so that one stray byte does not hide later,
more informative errors.
"""

from __future__ import annotations

import enum
import re
import sys
from dataclasses import dataclass

from repro.compiler.diagnostics import DiagnosticEngine, SourceLocation

C_KEYWORDS = frozenset(
    """
    auto break case char const continue default do double else enum extern
    float for goto if inline int long register restrict return short signed
    sizeof static struct switch typedef union unsigned void volatile while
    _Bool bool true false class new delete public private template typename
    namespace using
    """.split()
)


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT_LIT = "int"
    FLOAT_LIT = "float"
    STRING_LIT = "string"
    CHAR_LIT = "char"
    PUNCT = "punct"
    HASH_LINE = "hash-line"  # one full preprocessor line (text in .text)
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    location: SourceLocation

    @property
    def line(self) -> int:
        return self.location.line

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in texts

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.text!r}, L{self.location.line})"


class LexerError(Exception):
    """Raised for unrecoverable lexical failures (unterminated comment)."""


# Longest-match-first punctuator table.
_PUNCTUATORS = sorted(
    [
        "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
        "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
        "::", "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
        "~", "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
    ],
    key=len,
    reverse=True,
)

# ---------------------------------------------------------------------------
# The batch scanner behind tokenize(): ONE compiled master regex instead
# of a character-at-a-time loop.  ``next_token`` below remains the
# executable spec; ``tests/test_lexer.py`` asserts both produce
# identical token streams (text, kind, AND location) over the corpus.
# ---------------------------------------------------------------------------

#: master scanner — alternation order IS the dispatch priority
_MASTER_RE = re.compile(
    r"""
      (?P<ws>[ \t\r\f\v]+)
    | (?P<nl>\n)
    | (?P<cont>\\\n)
    | (?P<lcomment>//[^\n]*)
    | (?P<bcomment>/\*.*?\*/)
    | (?P<badcomment>/\*)
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<hex>0[xX][0-9a-fA-F]*(?P<hexsuf>[uUlLfF]*))
    | (?P<number>(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?[uUlLfF]*)
    | (?P<string>"(?:\\.|[^"\\\n])*")
    | (?P<char>'(?:\\.|[^'\\\n])*')
    | (?P<punct><<=|>>=|\.\.\.|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|::|[-+*/%<>=!&|^~?:;,.()\[\]{}])
    """,
    re.VERBOSE | re.DOTALL,
)

#: unterminated literals: consumed to end of line / EOF, backslash
#: escapes (including ``\``-newline) skipped, exactly like the spec
_UNTERM_STRING_RE = re.compile(r'"(?:\\.|[^"\\\n])*\\?', re.DOTALL)
_UNTERM_CHAR_RE = re.compile(r"'(?:\\.|[^'\\\n])*\\?", re.DOTALL)

#: one whole preprocessor line with ``\``-newline continuations
_HASH_LINE_RE = re.compile(r"#(?:\\\n|[^\n])*")


class Lexer:
    """Streaming tokenizer over one translation unit."""

    def __init__(self, source: str, filename: str = "<input>", diags: DiagnosticEngine | None = None):
        self.source = source
        self.filename = filename
        self.diags = diags if diags is not None else DiagnosticEngine()
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level helpers -------------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def at_eof(self) -> bool:
        return self.pos >= len(self.source)

    # -- skipping ----------------------------------------------------------

    def _skip_whitespace_and_comments(self) -> None:
        while not self.at_eof():
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "\\" and self._peek(1) == "\n":
                self._advance(2)
            elif ch == "/" and self._peek(1) == "/":
                while not self.at_eof() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                closed = False
                while not self.at_eof():
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        closed = True
                        break
                    self._advance()
                if not closed:
                    self.diags.error("unterminated /* comment", start, code="unterminated-comment")
                    return
            else:
                return

    # -- literal scanners ----------------------------------------------------

    def _lex_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and (self._peek() in "0123456789abcdefABCDEF"):
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1).isdigit():
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            elif self._peek() == ".":
                is_float = True
                self._advance()
            if self._peek() and self._peek() in "eE" and (
                self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() and self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        # suffixes
        while self._peek() and self._peek() in "uUlLfF":
            if self._peek() in "fF":
                is_float = True
            self._advance()
        text = self.source[start : self.pos]
        return Token(TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT, text, loc)

    def _lex_string(self, quote: str) -> Token:
        loc = self._loc()
        start = self.pos
        self._advance()  # opening quote
        while not self.at_eof():
            ch = self._peek()
            if ch == "\\":
                self._advance(2)
                continue
            if ch == "\n":
                break
            if ch == quote:
                self._advance()
                text = self.source[start : self.pos]
                kind = TokenKind.STRING_LIT if quote == '"' else TokenKind.CHAR_LIT
                return Token(kind, text, loc)
            self._advance()
        self.diags.error(
            f"unterminated {'string' if quote == chr(34) else 'character'} literal",
            loc,
            code="unterminated-literal",
        )
        text = self.source[start : self.pos]
        return Token(TokenKind.STRING_LIT, text, loc)

    def _lex_hash_line(self) -> Token:
        """Capture a whole preprocessor line (with continuations) as text."""
        loc = self._loc()
        start = self.pos
        while not self.at_eof():
            if self._peek() == "\\" and self._peek(1) == "\n":
                self._advance(2)
                continue
            if self._peek() == "\n":
                break
            self._advance()
        text = self.source[start : self.pos]
        # normalize continuations away so downstream sees one logical line
        text = text.replace("\\\n", " ")
        return Token(TokenKind.HASH_LINE, text, loc)

    # -- main entry ----------------------------------------------------------

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.at_eof():
            return Token(TokenKind.EOF, "", self._loc())
        ch = self._peek()
        if ch == "#" and self.col == 1 or (ch == "#" and self._line_prefix_blank()):
            return self._lex_hash_line()
        if ch.isalpha() or ch == "_":
            loc = self._loc()
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.source[start : self.pos]
            kind = TokenKind.KEYWORD if text in C_KEYWORDS else TokenKind.IDENT
            return Token(kind, text, loc)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number()
        if ch == '"':
            return self._lex_string('"')
        if ch == "'":
            return self._lex_string("'")
        for punct in _PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                loc = self._loc()
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, loc)
        # Unknown byte: report, skip, continue.
        loc = self._loc()
        bad = self._advance()
        self.diags.error(f"stray {bad!r} in program", loc, code="stray-character")
        return self.next_token()

    def _line_prefix_blank(self, pos: int | None = None) -> bool:
        """True if everything between the last newline and ``pos`` is blank."""
        idx = (self.pos if pos is None else pos) - 1
        while idx >= 0 and self.source[idx] != "\n":
            if self.source[idx] not in " \t":
                return False
            idx -= 1
        return True

    def tokenize(self) -> list[Token]:
        """Lex the whole input, returning tokens including the final EOF.

        Batch path: a single compiled master regex with a dispatch on
        the matched group, instead of re-entering the per-character
        ``next_token`` machinery.  Identifier/keyword/punctuator text is
        ``sys.intern``'d so downstream keyword and punctuator
        comparisons are pointer comparisons.  Produces exactly the
        stream ``next_token`` would (asserted by the lexer tests).
        """
        source = self.source
        filename = self.filename
        length = len(source)
        pos = self.pos
        line = self.line
        col = self.col
        intern = sys.intern
        tokens: list[Token] = []
        match_at = _MASTER_RE.match

        while pos < length:
            m = match_at(source, pos)
            if m is None:
                ch = source[pos]
                if ch == "#" and (col == 1 or self._line_prefix_blank(pos)):
                    loc = SourceLocation(filename, line, col)
                    hm = _HASH_LINE_RE.match(source, pos)
                    text = hm.group(0)
                    pos = hm.end()
                    nl = text.count("\n")
                    if nl:
                        line += nl
                        col = len(text) - text.rfind("\n")
                    else:
                        col += len(text)
                    tokens.append(
                        Token(TokenKind.HASH_LINE, text.replace("\\\n", " "), loc)
                    )
                    continue
                if ch in "\"'":
                    # a quote the master regex rejected: unterminated
                    loc = SourceLocation(filename, line, col)
                    pattern = _UNTERM_STRING_RE if ch == '"' else _UNTERM_CHAR_RE
                    lm = pattern.match(source, pos)
                    text = lm.group(0)
                    pos = lm.end()
                    nl = text.count("\n")
                    if nl:
                        line += nl
                        col = len(text) - text.rfind("\n")
                    else:
                        col += len(text)
                    self.diags.error(
                        f"unterminated {'string' if ch == chr(34) else 'character'} literal",
                        loc,
                        code="unterminated-literal",
                    )
                    tokens.append(Token(TokenKind.STRING_LIT, text, loc))
                    continue
                # Unknown byte: report, skip, continue.
                self.diags.error(
                    f"stray {ch!r} in program",
                    SourceLocation(filename, line, col),
                    code="stray-character",
                )
                pos += 1
                if ch == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                continue

            kind = m.lastgroup
            text = m.group(0)
            end = m.end()
            if kind == "ws":
                col += end - pos
                pos = end
                continue
            if kind == "nl":
                line += 1
                col = 1
                pos = end
                continue
            if kind == "cont":
                line += 1
                col = 1
                pos = end
                continue
            if kind == "lcomment":
                col += end - pos
                pos = end
                continue
            if kind == "bcomment":
                nl = text.count("\n")
                if nl:
                    line += nl
                    col = len(text) - text.rfind("\n")
                else:
                    col += len(text)
                pos = end
                continue
            if kind == "badcomment":
                self.diags.error(
                    "unterminated /* comment",
                    SourceLocation(filename, line, col),
                    code="unterminated-comment",
                )
                # the spec consumes the rest of the input looking for */
                rest = source[pos:]
                nl = rest.count("\n")
                if nl:
                    line += nl
                    col = len(rest) - rest.rfind("\n")
                else:
                    col += len(rest)
                pos = length
                break
            if kind == "ident":
                loc = SourceLocation(filename, line, col)
                col += end - pos
                pos = end
                interned = intern(text)
                tokens.append(
                    Token(
                        TokenKind.KEYWORD if interned in C_KEYWORDS else TokenKind.IDENT,
                        interned,
                        loc,
                    )
                )
                continue
            if kind == "hex":
                loc = SourceLocation(filename, line, col)
                col += end - pos
                pos = end
                suffix = m.group("hexsuf")
                is_float = "f" in suffix or "F" in suffix
                tokens.append(
                    Token(TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT, text, loc)
                )
                continue
            if kind == "number":
                loc = SourceLocation(filename, line, col)
                col += end - pos
                pos = end
                is_float = (
                    "." in text or "e" in text or "E" in text or "f" in text or "F" in text
                )
                tokens.append(
                    Token(TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT, text, loc)
                )
                continue
            if kind == "string" or kind == "char":
                loc = SourceLocation(filename, line, col)
                nl = text.count("\n")
                if nl:
                    line += nl
                    col = len(text) - text.rfind("\n")
                else:
                    col += len(text)
                pos = end
                tokens.append(
                    Token(
                        TokenKind.STRING_LIT if kind == "string" else TokenKind.CHAR_LIT,
                        text,
                        loc,
                    )
                )
                continue
            # punct
            loc = SourceLocation(filename, line, col)
            col += end - pos
            pos = end
            tokens.append(Token(TokenKind.PUNCT, intern(text), loc))

        self.pos = pos
        self.line = line
        self.col = col
        tokens.append(Token(TokenKind.EOF, "", self._loc()))
        return tokens


def tokenize(source: str, filename: str = "<input>", diags: DiagnosticEngine | None = None) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` fully."""
    return Lexer(source, filename, diags).tokenize()
