"""OpenMP directive and clause validity tables (OpenMP <= 4.5 subset).

The paper restricts its OpenMP corpus to features at or below version
4.5 so that the LLVM offloading compiler is fully compliant; we mirror
that here — the table carries a ``since`` version per directive and
:func:`validate_directive` rejects anything newer than the configured
``max_version`` (default 4.5) with an ``unsupported-feature`` error,
which is exactly how a partially-compliant compiler surfaces the
problem.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.diagnostics import DiagnosticEngine
from repro.compiler.pragma import Directive

# ---------------------------------------------------------------------------
# Clause groups
# ---------------------------------------------------------------------------

DATA_SHARING_CLAUSES = frozenset({"private", "firstprivate", "lastprivate", "shared", "default"})

MAP_TYPES = frozenset({"to", "from", "tofrom", "alloc", "release", "delete", "always"})

SCHEDULE_KINDS = frozenset({"static", "dynamic", "guided", "auto", "runtime"})

REDUCTION_OPERATORS = frozenset({"+", "*", "max", "min", "&", "|", "^", "&&", "||", "-"})

DEFAULT_MODES = frozenset({"shared", "none", "private", "firstprivate"})

PROC_BIND_MODES = frozenset({"master", "close", "spread"})

DEPEND_TYPES = frozenset({"in", "out", "inout", "sink", "source"})

#: Clauses that require a variable list argument.
VAR_LIST_CLAUSES = frozenset(
    {"private", "firstprivate", "lastprivate", "shared", "copyin", "copyprivate",
     "map", "is_device_ptr", "use_device_ptr", "linear", "aligned", "uniform",
     "depend", "flush", "to", "from", "link"}
)

#: Clauses that require a scalar expression argument.
SCALAR_ARG_CLAUSES = frozenset(
    {"num_threads", "collapse", "safelen", "simdlen", "num_teams", "thread_limit",
     "device", "priority", "grainsize", "num_tasks", "final", "if", "ordered_n"}
)

BARE_OK_CLAUSES = frozenset(
    {"nowait", "untied", "mergeable", "nogroup", "ordered", "simd", "threads",
     "seq_cst", "read", "write", "update", "capture", "parallel", "for",
     "sections", "taskgroup", "defaultmap", "inbranch", "notinbranch"}
)


# ---------------------------------------------------------------------------
# Directive table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DirectiveSpec:
    name: str
    kind: str  # 'parallel' | 'worksharing' | 'tasking' | 'device' | 'synchronization' | 'declarative' | 'simd'
    allowed: frozenset[str]
    since: float = 1.0  # OpenMP version introducing the directive
    requires_loop: bool = False
    requires_block: bool = False
    standalone: bool = True


def _spec(name: str, kind: str, allowed: set[str], since: float = 1.0, **kw) -> DirectiveSpec:
    return DirectiveSpec(name=name, kind=kind, allowed=frozenset(allowed), since=since, **kw)


_PARALLEL_CLAUSES = {"if", "num_threads", "default", "private", "firstprivate",
                     "shared", "copyin", "reduction", "proc_bind"}
_FOR_CLAUSES = {"private", "firstprivate", "lastprivate", "linear", "reduction",
                "schedule", "collapse", "ordered", "nowait"}
_SIMD_CLAUSES = {"safelen", "simdlen", "linear", "aligned", "private",
                 "lastprivate", "reduction", "collapse"}
_TARGET_CLAUSES = {"if", "device", "private", "firstprivate", "map", "is_device_ptr",
                   "defaultmap", "nowait", "depend"}
_TEAMS_CLAUSES = {"num_teams", "thread_limit", "default", "private", "firstprivate",
                  "shared", "reduction"}
_DISTRIBUTE_CLAUSES = {"private", "firstprivate", "lastprivate", "collapse", "dist_schedule"}
_TASK_CLAUSES = {"if", "final", "untied", "default", "mergeable", "private",
                 "firstprivate", "shared", "depend", "priority"}

DIRECTIVES: dict[str, DirectiveSpec] = {
    spec.name: spec
    for spec in [
        _spec("parallel", "parallel", _PARALLEL_CLAUSES, 1.0, standalone=False, requires_block=True),
        _spec("for", "worksharing", _FOR_CLAUSES, 1.0, requires_loop=True, standalone=False),
        _spec("parallel for", "worksharing", _PARALLEL_CLAUSES | _FOR_CLAUSES, 1.0,
              requires_loop=True, standalone=False),
        _spec("sections", "worksharing",
              {"private", "firstprivate", "lastprivate", "reduction", "nowait"},
              1.0, standalone=False, requires_block=True),
        _spec("section", "worksharing", set(), 1.0, standalone=False, requires_block=True),
        _spec("single", "worksharing",
              {"private", "firstprivate", "copyprivate", "nowait"},
              1.0, standalone=False, requires_block=True),
        _spec("master", "synchronization", set(), 1.0, standalone=False, requires_block=True),
        _spec("critical", "synchronization", {"hint"}, 1.0, standalone=False, requires_block=True),
        _spec("barrier", "synchronization", set(), 1.0),
        _spec("taskwait", "synchronization", set(), 3.0),
        _spec("taskyield", "synchronization", set(), 3.1),
        _spec("taskgroup", "synchronization", set(), 4.0, standalone=False, requires_block=True),
        _spec("atomic", "synchronization",
              {"read", "write", "update", "capture", "seq_cst"}, 1.0,
              standalone=False),
        _spec("flush", "synchronization", set(), 1.0),
        _spec("ordered", "synchronization", {"threads", "simd", "depend"}, 1.0,
              standalone=False, requires_block=True),
        _spec("task", "tasking", _TASK_CLAUSES, 3.0, standalone=False, requires_block=True),
        _spec("taskloop", "tasking",
              _TASK_CLAUSES | {"grainsize", "num_tasks", "collapse", "nogroup",
                               "lastprivate"},
              4.5, requires_loop=True, standalone=False),
        _spec("taskloop simd", "tasking",
              _TASK_CLAUSES | _SIMD_CLAUSES | {"grainsize", "num_tasks", "nogroup"},
              4.5, requires_loop=True, standalone=False),
        _spec("simd", "simd", _SIMD_CLAUSES, 4.0, requires_loop=True, standalone=False),
        _spec("for simd", "simd", _FOR_CLAUSES | _SIMD_CLAUSES, 4.0,
              requires_loop=True, standalone=False),
        _spec("parallel for simd", "simd",
              _PARALLEL_CLAUSES | _FOR_CLAUSES | _SIMD_CLAUSES, 4.0,
              requires_loop=True, standalone=False),
        _spec("declare simd", "declarative",
              {"simdlen", "linear", "aligned", "uniform", "inbranch", "notinbranch"}, 4.0),
        _spec("target", "device", _TARGET_CLAUSES, 4.0, standalone=False, requires_block=True),
        _spec("target data", "device",
              {"if", "device", "map", "use_device_ptr"}, 4.0,
              standalone=False, requires_block=True),
        _spec("target enter data", "device", {"if", "device", "map", "depend", "nowait"}, 4.5),
        _spec("target exit data", "device", {"if", "device", "map", "depend", "nowait"}, 4.5),
        _spec("target update", "device", {"if", "device", "to", "from", "depend", "nowait"}, 4.0),
        _spec("teams", "device", _TEAMS_CLAUSES, 4.0, standalone=False, requires_block=True),
        _spec("distribute", "device", _DISTRIBUTE_CLAUSES, 4.0, requires_loop=True,
              standalone=False),
        _spec("distribute parallel for", "device",
              _DISTRIBUTE_CLAUSES | _PARALLEL_CLAUSES | _FOR_CLAUSES - {"ordered"},
              4.0, requires_loop=True, standalone=False),
        _spec("distribute simd", "device", _DISTRIBUTE_CLAUSES | _SIMD_CLAUSES, 4.0,
              requires_loop=True, standalone=False),
        _spec("target parallel", "device", _TARGET_CLAUSES | _PARALLEL_CLAUSES, 4.5,
              standalone=False, requires_block=True),
        _spec("target parallel for", "device",
              _TARGET_CLAUSES | _PARALLEL_CLAUSES | _FOR_CLAUSES, 4.5,
              requires_loop=True, standalone=False),
        _spec("target parallel for simd", "device",
              _TARGET_CLAUSES | _PARALLEL_CLAUSES | _FOR_CLAUSES | _SIMD_CLAUSES, 4.5,
              requires_loop=True, standalone=False),
        _spec("target simd", "device", _TARGET_CLAUSES | _SIMD_CLAUSES, 4.5,
              requires_loop=True, standalone=False),
        _spec("target teams", "device", _TARGET_CLAUSES | _TEAMS_CLAUSES, 4.0,
              standalone=False, requires_block=True),
        _spec("target teams distribute", "device",
              _TARGET_CLAUSES | _TEAMS_CLAUSES | _DISTRIBUTE_CLAUSES, 4.0,
              requires_loop=True, standalone=False),
        _spec("target teams distribute simd", "device",
              _TARGET_CLAUSES | _TEAMS_CLAUSES | _DISTRIBUTE_CLAUSES | _SIMD_CLAUSES, 4.0,
              requires_loop=True, standalone=False),
        _spec("target teams distribute parallel for", "device",
              _TARGET_CLAUSES | _TEAMS_CLAUSES | _DISTRIBUTE_CLAUSES
              | _PARALLEL_CLAUSES | _FOR_CLAUSES - {"ordered"},
              4.0, requires_loop=True, standalone=False),
        _spec("target teams distribute parallel for simd", "device",
              _TARGET_CLAUSES | _TEAMS_CLAUSES | _DISTRIBUTE_CLAUSES
              | _PARALLEL_CLAUSES | _FOR_CLAUSES | _SIMD_CLAUSES - {"ordered"},
              4.0, requires_loop=True, standalone=False),
        _spec("declare target", "declarative", {"to", "link"}, 4.0),
        _spec("end declare target", "declarative", set(), 4.0),
        _spec("threadprivate", "declarative", set(), 1.0),
        _spec("cancel", "synchronization", {"parallel", "for", "sections", "taskgroup", "if"}, 4.0),
        _spec("cancellation point", "synchronization",
              {"parallel", "for", "sections", "taskgroup"}, 4.0),
        # Post-4.5 directives present in the table so the front-end can say
        # "unsupported" instead of "unknown" (mirrors LLVM's behaviour).
        _spec("taskwait depend", "synchronization", {"depend"}, 5.0),
        _spec("loop", "worksharing", {"bind", "collapse", "order", "private",
                                      "lastprivate", "reduction"},
              5.0, requires_loop=True, standalone=False),
        _spec("masked", "synchronization", {"filter"}, 5.1, standalone=False,
              requires_block=True),
        _spec("scope", "worksharing", {"private", "reduction", "nowait"}, 5.1,
              standalone=False, requires_block=True),
        _spec("teams loop", "device", _TEAMS_CLAUSES | {"bind", "collapse", "order"},
              5.0, requires_loop=True, standalone=False),
        _spec("target teams loop", "device",
              _TARGET_CLAUSES | _TEAMS_CLAUSES | {"bind", "collapse", "order"},
              5.0, requires_loop=True, standalone=False),
        _spec("parallel loop", "worksharing",
              _PARALLEL_CLAUSES | {"bind", "collapse", "order"},
              5.0, requires_loop=True, standalone=False),
    ]
}

DIRECTIVE_NAMES = frozenset(DIRECTIVES)

CLAUSE_NAMES = frozenset(
    set().union(*(spec.allowed for spec in DIRECTIVES.values()))
    | {"reduction", "hint", "bind", "order", "filter"}
)

LOOP_DIRECTIVES = frozenset(n for n, s in DIRECTIVES.items() if s.requires_loop)
BLOCK_DIRECTIVES = frozenset(n for n, s in DIRECTIVES.items() if s.requires_block)

#: OpenMP runtime API provided by ``omp.h``.
RUNTIME_FUNCTIONS = frozenset(
    {
        "omp_get_num_threads", "omp_get_thread_num", "omp_get_max_threads",
        "omp_set_num_threads", "omp_get_num_procs", "omp_in_parallel",
        "omp_set_dynamic", "omp_get_dynamic", "omp_get_wtime", "omp_get_wtick",
        "omp_get_num_devices", "omp_get_default_device", "omp_set_default_device",
        "omp_is_initial_device", "omp_get_team_num", "omp_get_num_teams",
        "omp_target_alloc", "omp_target_free", "omp_target_memcpy",
        "omp_target_is_present", "omp_init_lock", "omp_set_lock",
        "omp_unset_lock", "omp_destroy_lock", "omp_test_lock",
        "omp_get_level", "omp_get_ancestor_thread_num", "omp_get_team_size",
    }
)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def validate_directive(
    directive: Directive,
    diags: DiagnosticEngine,
    max_version: float = 4.5,
) -> bool:
    """Validate one parsed OpenMP directive; emit diagnostics; return ok."""
    ok = True
    spec = DIRECTIVES.get(directive.name)
    if spec is None:
        diags.error(
            f"unrecognized OpenMP directive '{directive.name}'",
            directive.location,
            code="bad-directive",
        )
        return False
    if spec.since > max_version:
        diags.error(
            f"'#pragma omp {directive.name}' requires OpenMP {spec.since}, "
            f"but this compiler supports up to {max_version}",
            directive.location,
            code="unsupported-feature",
        )
        return False

    seen: set[str] = set()
    for clause in directive.clauses:
        if clause.name not in CLAUSE_NAMES:
            diags.error(
                f"invalid clause '{clause.name}' on '#pragma omp {directive.name}'",
                clause.location,
                code="unknown-clause",
            )
            ok = False
            continue
        if clause.name not in spec.allowed and not (
            clause.name == "reduction" and "reduction" in spec.allowed
        ):
            diags.error(
                f"clause '{clause.name}' is not valid on '#pragma omp {directive.name}'",
                clause.location,
                code="clause-not-allowed",
            )
            ok = False
            continue
        if clause.name in seen and clause.name not in {"map", "depend", "reduction", "linear", "to", "from"}:
            diags.warn(
                f"duplicate clause '{clause.name}' on '#pragma omp {directive.name}'",
                clause.location,
                code="duplicate-clause",
            )
        seen.add(clause.name)
        ok &= _validate_clause_argument(directive, clause, diags)

    ok &= _validate_exclusions(directive, diags)
    return ok


def _validate_clause_argument(directive: Directive, clause, diags: DiagnosticEngine) -> bool:
    if clause.name in VAR_LIST_CLAUSES - {"flush"}:
        if not clause.argument:
            diags.error(
                f"clause '{clause.name}' on '#pragma omp {directive.name}' requires an argument",
                clause.location,
                code="clause-needs-arg",
            )
            return False
        if clause.name == "map":
            return _validate_map(directive, clause, diags)
        if clause.name == "depend":
            dep = clause.modifier()
            if dep is None or dep.split(",")[0].strip() not in DEPEND_TYPES:
                diags.error(
                    f"depend clause requires a dependence type from {sorted(DEPEND_TYPES)}",
                    clause.location,
                    code="bad-depend",
                )
                return False
        if not clause.variables():
            diags.error(
                f"clause '{clause.name}' has an empty or malformed variable list",
                clause.location,
                code="clause-needs-arg",
            )
            return False
    elif clause.name in SCALAR_ARG_CLAUSES:
        if not clause.argument and clause.name != "ordered":
            diags.error(
                f"clause '{clause.name}' on '#pragma omp {directive.name}' requires an argument",
                clause.location,
                code="clause-needs-arg",
            )
            return False
    elif clause.name == "reduction":
        if not clause.argument or ":" not in clause.argument:
            diags.error(
                "reduction clause must have the form reduction(operator:var-list)",
                clause.location,
                code="bad-reduction",
            )
            return False
        op = clause.argument.split(":", 1)[0].strip()
        if op not in REDUCTION_OPERATORS:
            diags.error(
                f"invalid reduction operator '{op}'",
                clause.location,
                code="bad-reduction",
            )
            return False
        if not clause.variables():
            diags.error("reduction clause has an empty variable list", clause.location, code="bad-reduction")
            return False
    elif clause.name == "schedule":
        if not clause.argument:
            diags.error(
                "schedule clause requires a kind argument",
                clause.location,
                code="bad-schedule",
            )
            return False
        kind = clause.argument.split(",", 1)[0].strip()
        kind = kind.split(":")[-1].strip()  # tolerate modifiers like monotonic:
        if kind not in SCHEDULE_KINDS:
            diags.error(
                f"invalid schedule kind '{kind}'",
                clause.location,
                code="bad-schedule",
            )
            return False
    elif clause.name == "default":
        if clause.argument not in DEFAULT_MODES:
            diags.error(
                f"default clause argument must be one of {sorted(DEFAULT_MODES)}, got {clause.argument!r}",
                clause.location,
                code="bad-default",
            )
            return False
    elif clause.name == "proc_bind":
        if clause.argument not in PROC_BIND_MODES:
            diags.error(
                f"proc_bind argument must be one of {sorted(PROC_BIND_MODES)}",
                clause.location,
                code="bad-proc-bind",
            )
            return False
    return True


def _validate_map(directive: Directive, clause, diags: DiagnosticEngine) -> bool:
    mod = clause.modifier()
    if mod is not None:
        map_types = [m.strip() for m in mod.split(",")]
        for mt in map_types:
            if mt not in MAP_TYPES:
                diags.error(
                    f"invalid map type '{mt}' (expected one of {sorted(MAP_TYPES)})",
                    clause.location,
                    code="bad-map",
                )
                return False
    if not clause.variables():
        diags.error("map clause has an empty variable list", clause.location, code="bad-map")
        return False
    # release/delete are only valid on 'target exit data'
    if mod in ("release", "delete") and directive.name != "target exit data":
        diags.error(
            f"map type '{mod}' is only permitted on 'target exit data'",
            clause.location,
            code="bad-map",
        )
        return False
    return True


def _validate_exclusions(directive: Directive, diags: DiagnosticEngine) -> bool:
    ok = True
    names = set(directive.clause_names())
    if directive.name == "atomic":
        kinds = names & {"read", "write", "update", "capture"}
        if len(kinds) > 1:
            diags.error(
                "atomic directive may specify at most one of read/write/update/capture",
                directive.location,
                code="clause-conflict",
            )
            ok = False
    if directive.name in ("target enter data", "target exit data") and "map" not in names:
        diags.error(
            f"'#pragma omp {directive.name}' requires at least one map clause",
            directive.location,
            code="missing-clause",
        )
        ok = False
    if directive.name == "target update" and not names & {"to", "from"}:
        diags.error(
            "'#pragma omp target update' requires at least one to/from clause",
            directive.location,
            code="missing-clause",
        )
        ok = False
    if directive.name == "cancel" and not names & {"parallel", "for", "sections", "taskgroup"}:
        diags.error(
            "'#pragma omp cancel' requires a construct-type clause",
            directive.location,
            code="missing-clause",
        )
        ok = False
    return ok
