"""Semantic analysis: symbol tables, use-before-declaration, directives.

This is the stage that catches the negative-probing defect classes a
parser alone cannot:

* use of undeclared identifiers (issue 2);
* calls to undeclared functions (random non-directive code, issue 3);
* directive/clause validity, including clause variable lists naming
  undeclared variables and loop directives not annotating a ``for``
  loop (issue 0);
* a missing ``main`` (the "link" error a driver reports).

Analysis is tolerant: it records all errors it can find rather than
stopping at the first, mirroring driver behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import astnodes as ast
from repro.compiler import openacc_spec, openmp_spec
from repro.compiler.diagnostics import DiagnosticEngine
from repro.compiler.pragma import Directive

#: C standard library functions the toolchain headers declare.
LIBC_FUNCTIONS = frozenset(
    {
        "printf", "fprintf", "sprintf", "snprintf", "puts", "putchar",
        "scanf", "malloc", "calloc", "realloc", "free", "memcpy", "memset",
        "memcmp", "strcpy", "strncpy", "strcmp", "strncmp", "strlen", "strcat",
        "abs", "labs", "fabs", "fabsf", "sqrt", "sqrtf", "pow", "powf",
        "exp", "expf", "log", "logf", "sin", "cos", "tan", "floor", "ceil",
        "fmax", "fmin", "fmod", "rand", "srand", "exit", "abort", "atoi",
        "atof", "assert", "time", "clock", "isnan", "isinf",
        # Fortran front-end intrinsics lowered onto the same substrate
        "__fortran_print", "__to_real", "__to_int",
    }
)

#: Macro-like constants the headers provide.
LIBC_CONSTANTS = frozenset(
    {
        "NULL", "EXIT_SUCCESS", "EXIT_FAILURE", "RAND_MAX", "INT_MAX",
        "INT_MIN", "DBL_MAX", "DBL_MIN", "FLT_MAX", "FLT_MIN", "DBL_EPSILON",
        "FLT_EPSILON", "stdout", "stderr", "stdin", "CLOCKS_PER_SEC",
        "acc_device_default", "acc_device_host", "acc_device_not_host",
        "acc_device_nvidia", "omp_lock_t",
    }
)


@dataclass
class Scope:
    parent: "Scope | None" = None
    names: dict[str, ast.CType] = field(default_factory=dict)

    def declare(self, name: str, ctype: ast.CType) -> None:
        self.names[name] = ctype

    def lookup(self, name: str) -> ast.CType | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def is_declared(self, name: str) -> bool:
        return self.lookup(name) is not None


@dataclass
class SemanticInfo:
    """Facts gathered during analysis, consumed by the driver and judge."""

    directive_count: int = 0
    acc_directive_count: int = 0
    omp_directive_count: int = 0
    loop_directive_count: int = 0
    data_directive_count: int = 0
    has_main: bool = False
    undeclared_uses: list[str] = field(default_factory=list)
    functions_defined: list[str] = field(default_factory=list)
    runtime_calls: list[str] = field(default_factory=list)
    directives: list[Directive] = field(default_factory=list)


class SemanticAnalyzer:
    """Analyze a translation unit; emit diagnostics into ``diags``."""

    def __init__(
        self,
        diags: DiagnosticEngine,
        openmp_max_version: float = 4.5,
    ):
        self.diags = diags
        self.openmp_max_version = openmp_max_version
        self.info = SemanticInfo()
        self._known_functions: set[str] = set()

    # ------------------------------------------------------------------

    def analyze(self, unit: ast.TranslationUnit) -> SemanticInfo:
        globals_scope = Scope()
        for name in LIBC_CONSTANTS:
            globals_scope.declare(name, ast.INT)
        self._known_functions = (
            set(LIBC_FUNCTIONS)
            | set(openacc_spec.RUNTIME_FUNCTIONS)
            | set(openmp_spec.RUNTIME_FUNCTIONS)
        )
        for fn in unit.functions:
            self._known_functions.add(fn.name)
            if fn.body is not None:
                self.info.functions_defined.append(fn.name)
        for decl in unit.globals:
            self._declare(decl, globals_scope)
        for fn in unit.functions:
            if fn.body is None:
                continue
            if fn.name == "main":
                self.info.has_main = True
            self._analyze_function(fn, globals_scope)
        if not self.info.has_main:
            self.diags.error(
                "undefined reference to 'main' (no entry point defined)",
                code="no-main",
            )
        return self.info

    # ------------------------------------------------------------------

    def _declare(self, decl: ast.Declaration, scope: Scope) -> None:
        for declarator in decl.declarators:
            ctype = declarator.ctype
            if declarator.is_array:
                ctype = ctype.pointer_to()
            if declarator.name in scope.names:
                self.diags.warn(
                    f"redeclaration of '{declarator.name}'",
                    declarator.location,
                    code="redeclaration",
                )
            scope.declare(declarator.name, ctype)
            for dim in declarator.array_dims:
                if dim is not None:
                    self._check_expr(dim, scope)
            if declarator.init is not None:
                self._check_expr(declarator.init, scope)

    def _analyze_function(self, fn: ast.FunctionDef, globals_scope: Scope) -> None:
        scope = Scope(parent=globals_scope)
        for param in fn.params:
            if param.name:
                ctype = param.ctype.pointer_to() if param.array else param.ctype
                scope.declare(param.name, ctype)
        assert fn.body is not None
        self._check_block(fn.body, scope)

    def _check_block(self, block: ast.Compound, parent: Scope) -> None:
        scope = Scope(parent=parent)
        for stmt in block.body:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Declaration):
            self._declare(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Compound):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._check_stmt(stmt.body, scope)
            self._check_expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(parent=scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._check_stmt(stmt.body, inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.DirectiveStmt):
            self._check_directive(stmt, scope)
        # Break/Continue: nothing to check

    def _check_directive(self, stmt: ast.DirectiveStmt, scope: Scope) -> None:
        directive = stmt.directive
        assert isinstance(directive, Directive)
        self.info.directive_count += 1
        self.info.directives.append(directive)
        if directive.model == "acc":
            self.info.acc_directive_count += 1
            spec_mod = openacc_spec
            ok = openacc_spec.validate_directive(directive, self.diags)
        else:
            self.info.omp_directive_count += 1
            spec_mod = openmp_spec
            ok = openmp_spec.validate_directive(
                directive, self.diags, max_version=self.openmp_max_version
            )
        spec = spec_mod.DIRECTIVES.get(directive.name)
        if spec is None:
            return
        if spec.kind in ("data", "device"):
            self.info.data_directive_count += 1
        if spec.requires_loop:
            self.info.loop_directive_count += 1
            construct = stmt.construct
            # allow directive stacking: loop directive above another directive
            while isinstance(construct, ast.DirectiveStmt):
                construct = construct.construct
            if not isinstance(construct, ast.For):
                self.diags.error(
                    f"'#pragma {directive.model} {directive.name}' must be followed by a for loop",
                    directive.location,
                    code="directive-needs-loop",
                )
        elif spec.requires_block and stmt.construct is None:
            self.diags.error(
                f"'#pragma {directive.model} {directive.name}' must be followed by a statement or block",
                directive.location,
                code="directive-needs-construct",
            )
        if ok:
            self._check_clause_variables(directive, scope)
        if stmt.construct is not None:
            # variables declared privately inside the construct stay local
            self._check_stmt(stmt.construct, Scope(parent=scope))

    def _check_clause_variables(self, directive: Directive, scope: Scope) -> None:
        var_list_names = (
            openacc_spec.VAR_LIST_CLAUSES
            if directive.model == "acc"
            else openmp_spec.VAR_LIST_CLAUSES
        )
        for clause in directive.clauses:
            if clause.name in var_list_names or clause.name == "reduction":
                for name in clause.variables():
                    if not scope.is_declared(name) and name not in self._known_functions:
                        self.info.undeclared_uses.append(name)
                        self.diags.error(
                            f"use of undeclared identifier '{name}' in "
                            f"'{clause.name}' clause",
                            clause.location,
                            code="undeclared",
                        )

    # ------------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> None:
        for node in ast.walk_expressions(expr):
            if isinstance(node, ast.Identifier):
                if not scope.is_declared(node.name) and node.name not in self._known_functions:
                    self.info.undeclared_uses.append(node.name)
                    self.diags.error(
                        f"use of undeclared identifier '{node.name}'",
                        node.location,
                        code="undeclared",
                    )
            elif isinstance(node, ast.Call):
                if node.callee in (
                    openacc_spec.RUNTIME_FUNCTIONS | openmp_spec.RUNTIME_FUNCTIONS
                ):
                    self.info.runtime_calls.append(node.callee)
                if node.callee not in self._known_functions and not scope.is_declared(node.callee):
                    self.info.undeclared_uses.append(node.callee)
                    self.diags.error(
                        f"call to undeclared function '{node.callee}'",
                        node.location,
                        code="undeclared-function",
                    )
