"""Simulated compiler substrate for directive-based parallel programs.

This package implements a small but genuine compiler front-end for the
C/C++ subset used by OpenACC/OpenMP validation & verification (V&V)
testsuites, plus a light Fortran front-end.  It is the substrate the
LLM4VV validation pipeline compiles candidate tests with:

* :mod:`repro.compiler.lexer` — tokenizer (C subset, comments, pragmas);
* :mod:`repro.compiler.preprocessor` — ``#include``/``#define`` handling;
* :mod:`repro.compiler.cparser` — recursive-descent parser producing an AST;
* :mod:`repro.compiler.semantic` — symbol tables and semantic checks;
* :mod:`repro.compiler.pragma` — ``#pragma acc`` / ``#pragma omp`` parsing;
* :mod:`repro.compiler.openacc_spec` / :mod:`repro.compiler.openmp_spec`
  — directive and clause validity tables;
* :mod:`repro.compiler.fortran` — Fortran-lite front-end;
* :mod:`repro.compiler.driver` — the user-facing :class:`Compiler` that
  emits return codes and diagnostics like a real driver.

The front-end is deliberately strict about exactly the defect classes
negative probing introduces (unbalanced brackets, undeclared
identifiers, malformed directives, non-C input) because those are the
defects any conforming compiler rejects.
"""

from repro.compiler.diagnostics import Diagnostic, DiagnosticEngine, Severity
from repro.compiler.driver import CompileResult, Compiler, detect_language
from repro.compiler.lexer import Lexer, LexerError, Token, TokenKind

__all__ = [
    "Compiler",
    "CompileResult",
    "Diagnostic",
    "DiagnosticEngine",
    "Severity",
    "Lexer",
    "LexerError",
    "Token",
    "TokenKind",
    "detect_language",
]
