"""AST node definitions for the C subset and for directive constructs.

Nodes are plain dataclasses; every node carries the source location of
its first token so semantic analysis and the interpreter can produce
located diagnostics and runtime errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.compiler.diagnostics import SourceLocation

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CType:
    """A C type: base name, pointer depth, optional array dimensions.

    ``base`` is the canonical spelling (``int``, ``double``, ``float``,
    ``char``, ``void``, ``long``, ``unsigned int``, ...).  The model is
    deliberately structural, not nominal — enough for the corpus and for
    catching the semantic defects negative probing injects.
    """

    base: str
    pointers: int = 0
    const: bool = False

    @property
    def is_void(self) -> bool:
        return self.base == "void" and self.pointers == 0

    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0

    @property
    def is_floating(self) -> bool:
        return self.pointers == 0 and self.base in ("float", "double", "long double")

    @property
    def is_integral(self) -> bool:
        return self.pointers == 0 and not self.is_floating and self.base != "void"

    def pointee(self) -> "CType":
        if self.pointers == 0:
            raise ValueError(f"{self} is not a pointer type")
        return CType(self.base, self.pointers - 1, self.const)

    def pointer_to(self) -> "CType":
        return CType(self.base, self.pointers + 1, self.const)

    def __str__(self) -> str:
        return ("const " if self.const else "") + self.base + "*" * self.pointers


INT = CType("int")
DOUBLE = CType("double")
FLOAT = CType("float")
CHAR = CType("char")
VOID = CType("void")
BOOL = CType("int")  # _Bool folds to int in this model
SIZE_T = CType("unsigned long")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    location: SourceLocation


@dataclass
class IntLiteral(Expr):
    value: int
    text: str = ""


@dataclass
class FloatLiteral(Expr):
    value: float
    text: str = ""


@dataclass
class StringLiteral(Expr):
    value: str


@dataclass
class CharLiteral(Expr):
    value: str


@dataclass
class Identifier(Expr):
    name: str
    #: frame-slot annotation written by the closure backend's lowerer
    #: (``repro.runtime.compilebody``); ``None`` = global / not lowered
    slot: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass
class UnaryOp(Expr):
    op: str  # '-', '+', '!', '~', '*', '&', '++', '--'
    operand: Expr
    prefix: bool = True


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Assignment(Expr):
    op: str  # '=', '+=', '-=', ...
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class Call(Expr):
    callee: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    base: Expr
    member: str
    arrow: bool = False


@dataclass
class Cast(Expr):
    target_type: CType
    operand: Expr


@dataclass
class SizeOf(Expr):
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


@dataclass
class CommaExpr(Expr):
    parts: list[Expr] = field(default_factory=list)


@dataclass
class InitList(Expr):
    """Brace-enclosed initializer list ``{1, 2, 3}``."""

    items: list[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    location: SourceLocation


@dataclass
class Declarator:
    """One declared entity inside a declaration."""

    name: str
    ctype: CType
    array_dims: list[Optional[Expr]] = field(default_factory=list)
    init: Optional[Expr] = None
    location: Optional[SourceLocation] = None
    #: frame-slot annotation written by the closure backend's lowerer
    slot: Optional[int] = field(default=None, compare=False, repr=False)

    @property
    def is_array(self) -> bool:
        return bool(self.array_dims)


@dataclass
class Declaration(Stmt):
    declarators: list[Declarator] = field(default_factory=list)
    storage: Optional[str] = None  # 'static', 'extern', ...


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None  # None => empty statement ';'


@dataclass
class Compound(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Union[Declaration, ExprStmt]] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class DirectiveStmt(Stmt):
    """A parsed ``#pragma acc``/``#pragma omp`` directive.

    ``directive`` is a :class:`repro.compiler.pragma.Directive`;
    ``construct`` is the statement the directive applies to (``None``
    for standalone directives such as ``acc update`` or ``omp barrier``).
    """

    directive: object = None
    construct: Optional[Stmt] = None


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ctype: CType
    array: bool = False
    location: Optional[SourceLocation] = None


@dataclass
class FunctionDef:
    name: str
    return_type: CType
    params: list[Param]
    body: Optional[Compound]  # None for prototypes
    location: SourceLocation
    variadic: bool = False
    #: frame size computed by the closure backend's lowerer
    frame_slots: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass
class TranslationUnit:
    filename: str
    functions: list[FunctionDef] = field(default_factory=list)
    globals: list[Declaration] = field(default_factory=list)
    includes: list[str] = field(default_factory=list)
    defines: dict[str, str] = field(default_factory=dict)

    def function(self, name: str) -> Optional[FunctionDef]:
        for fn in self.functions:
            if fn.name == name and fn.body is not None:
                return fn
        return None


def walk_statements(stmt: Stmt):
    """Yield ``stmt`` and every statement nested inside it, pre-order."""
    yield stmt
    if isinstance(stmt, Compound):
        for child in stmt.body:
            yield from walk_statements(child)
    elif isinstance(stmt, If):
        yield from walk_statements(stmt.then)
        if stmt.otherwise is not None:
            yield from walk_statements(stmt.otherwise)
    elif isinstance(stmt, (While, DoWhile)):
        yield from walk_statements(stmt.body)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield from walk_statements(stmt.init)
        yield from walk_statements(stmt.body)
    elif isinstance(stmt, DirectiveStmt) and stmt.construct is not None:
        yield from walk_statements(stmt.construct)


def walk_expressions(node):
    """Yield every expression nested in a statement or expression."""
    if isinstance(node, Expr):
        yield node
        if isinstance(node, UnaryOp):
            yield from walk_expressions(node.operand)
        elif isinstance(node, BinaryOp):
            yield from walk_expressions(node.left)
            yield from walk_expressions(node.right)
        elif isinstance(node, Assignment):
            yield from walk_expressions(node.target)
            yield from walk_expressions(node.value)
        elif isinstance(node, Conditional):
            yield from walk_expressions(node.cond)
            yield from walk_expressions(node.then)
            yield from walk_expressions(node.otherwise)
        elif isinstance(node, Call):
            for arg in node.args:
                yield from walk_expressions(arg)
        elif isinstance(node, Index):
            yield from walk_expressions(node.base)
            yield from walk_expressions(node.index)
        elif isinstance(node, Member):
            yield from walk_expressions(node.base)
        elif isinstance(node, Cast):
            yield from walk_expressions(node.operand)
        elif isinstance(node, SizeOf) and node.operand is not None:
            yield from walk_expressions(node.operand)
        elif isinstance(node, CommaExpr):
            for part in node.parts:
                yield from walk_expressions(part)
        elif isinstance(node, InitList):
            for item in node.items:
                yield from walk_expressions(item)
        return
    if isinstance(node, Stmt):
        for sub in walk_statements(node):
            for expr in _statement_expressions(sub):
                yield from walk_expressions(expr)


def _statement_expressions(stmt: Stmt):
    if isinstance(stmt, ExprStmt) and stmt.expr is not None:
        yield stmt.expr
    elif isinstance(stmt, Declaration):
        for decl in stmt.declarators:
            if decl.init is not None:
                yield decl.init
            for dim in decl.array_dims:
                if dim is not None:
                    yield dim
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, (While, DoWhile)):
        yield stmt.cond
    elif isinstance(stmt, For):
        if stmt.cond is not None:
            yield stmt.cond
        if stmt.step is not None:
            yield stmt.step
    elif isinstance(stmt, Return) and stmt.value is not None:
        yield stmt.value
