"""OpenACC directive and clause validity tables (OpenACC 2.7/3.x subset).

The tables cover the directives and clauses exercised by the OpenACC
V&V testsuite.  :func:`validate_directive` performs the checks a
conforming compiler front-end performs before code generation:

* the clause must be allowed on the directive;
* data/var-list clauses must carry an argument;
* ``reduction`` must be ``op:list`` with a known operator;
* scalar-expression clauses (``num_gangs`` etc.) must carry an argument;
* mutually exclusive clauses (``seq`` with ``gang``/``worker``/``vector``,
  ``independent`` with ``seq``);
* loop-associated directives must annotate a ``for`` loop (checked by
  semantic analysis via :data:`LOOP_DIRECTIVES`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.diagnostics import DiagnosticEngine
from repro.compiler.pragma import Directive

# ---------------------------------------------------------------------------
# Clause groups
# ---------------------------------------------------------------------------

DATA_CLAUSES = frozenset(
    {"copy", "copyin", "copyout", "create", "no_create", "present",
     "deviceptr", "attach", "delete", "detach"}
)

PRIVATE_CLAUSES = frozenset({"private", "firstprivate"})

LOOP_SCHED_CLAUSES = frozenset({"gang", "worker", "vector", "seq", "auto", "independent",
                                "collapse", "tile", "device_type"})

COMPUTE_SCALAR_CLAUSES = frozenset({"num_gangs", "num_workers", "vector_length", "if",
                                    "async", "wait", "self", "default", "device_type"})

#: Clauses whose argument is a variable list and therefore mandatory.
VAR_LIST_CLAUSES = DATA_CLAUSES | PRIVATE_CLAUSES | frozenset(
    {"use_device", "device", "host", "link", "device_resident", "cache"}
)

#: Clauses that require a scalar argument.
SCALAR_ARG_CLAUSES = frozenset(
    {"num_gangs", "num_workers", "vector_length", "collapse", "tile", "if"}
)

#: Clauses that are valid with no argument.
BARE_OK_CLAUSES = frozenset(
    {"seq", "auto", "independent", "gang", "worker", "vector", "async",
     "wait", "finalize", "if_present", "nohost", "read", "write", "update",
     "capture", "self"}
)

REDUCTION_OPERATORS = frozenset({"+", "*", "max", "min", "&", "|", "^", "&&", "||"})

DEFAULT_MODES = frozenset({"none", "present"})

# ---------------------------------------------------------------------------
# Directive table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DirectiveSpec:
    """Validity data for one directive."""

    name: str
    kind: str  # 'compute' | 'data' | 'loop' | 'standalone' | 'declarative' | 'synchronization'
    allowed: frozenset[str]
    requires_loop: bool = False
    requires_block: bool = False
    standalone: bool = True
    notes: str = ""


def _spec(name: str, kind: str, allowed: set[str], **kw) -> DirectiveSpec:
    return DirectiveSpec(name=name, kind=kind, allowed=frozenset(allowed), **kw)


_COMPUTE_COMMON = {
    "if", "async", "wait", "num_gangs", "num_workers", "vector_length",
    "default", "device_type", "private", "firstprivate", "reduction",
    "self",
} | set(DATA_CLAUSES)

_LOOP_COMMON = {
    "collapse", "gang", "worker", "vector", "seq", "auto", "tile",
    "device_type", "independent", "private", "reduction",
}

DIRECTIVES: dict[str, DirectiveSpec] = {
    spec.name: spec
    for spec in [
        _spec("parallel", "compute", _COMPUTE_COMMON, standalone=False, requires_block=True),
        _spec("kernels", "compute", _COMPUTE_COMMON - {"private", "firstprivate", "reduction"},
              standalone=False, requires_block=True),
        _spec("serial", "compute", _COMPUTE_COMMON - {"num_gangs", "num_workers", "vector_length"},
              standalone=False, requires_block=True),
        _spec("data", "data", {"if", "async", "wait", "default", "device_type"} | set(DATA_CLAUSES),
              standalone=False, requires_block=True),
        _spec("enter data", "standalone",
              {"if", "async", "wait", "copyin", "create", "attach"}),
        _spec("exit data", "standalone",
              {"if", "async", "wait", "copyout", "delete", "detach", "finalize"}),
        _spec("host_data", "data", {"use_device", "if", "if_present"},
              standalone=False, requires_block=True),
        _spec("loop", "loop", _LOOP_COMMON, requires_loop=True, standalone=False),
        _spec("parallel loop", "loop", _COMPUTE_COMMON | _LOOP_COMMON,
              requires_loop=True, standalone=False),
        _spec("kernels loop", "loop",
              (_COMPUTE_COMMON - {"private", "firstprivate"}) | _LOOP_COMMON,
              requires_loop=True, standalone=False),
        _spec("serial loop", "loop",
              (_COMPUTE_COMMON - {"num_gangs", "num_workers", "vector_length"}) | _LOOP_COMMON,
              requires_loop=True, standalone=False),
        _spec("atomic", "synchronization", {"read", "write", "update", "capture"},
              standalone=False, requires_block=False,
              notes="applies to the following expression statement"),
        _spec("update", "standalone",
              {"if", "if_present", "async", "wait", "self", "host", "device", "device_type"}),
        _spec("wait", "standalone", {"async", "if"}),
        _spec("cache", "standalone", set(), notes="argument list parsed as clause-less"),
        _spec("routine", "declarative", {"gang", "worker", "vector", "seq", "bind", "nohost",
                                         "device_type"}),
        _spec("declare", "declarative",
              set(DATA_CLAUSES) | {"device_resident", "link"}),
        _spec("init", "standalone", {"device_type", "device_num", "if"}),
        _spec("shutdown", "standalone", {"device_type", "device_num", "if"}),
        _spec("set", "standalone", {"device_type", "device_num", "default_async", "if"}),
    ]
}

DIRECTIVE_NAMES = frozenset(DIRECTIVES)

CLAUSE_NAMES = frozenset(
    set().union(*(spec.allowed for spec in DIRECTIVES.values()))
    | {"reduction", "bind", "device_num", "default_async", "cache"}
)

LOOP_DIRECTIVES = frozenset(n for n, s in DIRECTIVES.items() if s.requires_loop)
BLOCK_DIRECTIVES = frozenset(n for n, s in DIRECTIVES.items() if s.requires_block)
STANDALONE_DIRECTIVES = frozenset(n for n, s in DIRECTIVES.items() if s.standalone)

#: OpenACC runtime API functions provided by ``openacc.h``.
RUNTIME_FUNCTIONS = frozenset(
    {
        "acc_get_num_devices", "acc_set_device_type", "acc_get_device_type",
        "acc_set_device_num", "acc_get_device_num", "acc_init", "acc_shutdown",
        "acc_async_test", "acc_async_test_all", "acc_wait", "acc_wait_all",
        "acc_get_default_async", "acc_set_default_async", "acc_on_device",
        "acc_malloc", "acc_free", "acc_copyin", "acc_create", "acc_copyout",
        "acc_delete", "acc_update_device", "acc_update_self", "acc_map_data",
        "acc_unmap_data", "acc_deviceptr", "acc_hostptr", "acc_is_present",
        "acc_memcpy_to_device", "acc_memcpy_from_device",
    }
)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def validate_directive(directive: Directive, diags: DiagnosticEngine) -> bool:
    """Validate one parsed OpenACC directive; emit diagnostics; return ok."""
    ok = True
    spec = DIRECTIVES.get(directive.name)
    if spec is None:
        diags.error(
            f"unrecognized OpenACC directive '{directive.name}'",
            directive.location,
            code="bad-directive",
        )
        return False

    seen: set[str] = set()
    for clause in directive.clauses:
        if clause.name not in CLAUSE_NAMES:
            diags.error(
                f"invalid clause '{clause.name}' on '#pragma acc {directive.name}'",
                clause.location,
                code="unknown-clause",
            )
            ok = False
            continue
        if clause.name not in spec.allowed and not (
            clause.name == "reduction" and "reduction" in spec.allowed
        ):
            diags.error(
                f"clause '{clause.name}' is not valid on '#pragma acc {directive.name}'",
                clause.location,
                code="clause-not-allowed",
            )
            ok = False
            continue
        if clause.name in seen and clause.name not in DATA_CLAUSES | {"wait", "device_type", "reduction"}:
            diags.warn(
                f"duplicate clause '{clause.name}' on '#pragma acc {directive.name}'",
                clause.location,
                code="duplicate-clause",
            )
        seen.add(clause.name)
        ok &= _validate_clause_argument(directive, clause, diags)

    ok &= _validate_exclusions(directive, diags)
    return ok


def _validate_clause_argument(directive: Directive, clause, diags: DiagnosticEngine) -> bool:
    if clause.name in VAR_LIST_CLAUSES:
        if not clause.argument:
            diags.error(
                f"clause '{clause.name}' on '#pragma acc {directive.name}' requires a variable list",
                clause.location,
                code="clause-needs-arg",
            )
            return False
        if not clause.variables():
            diags.error(
                f"clause '{clause.name}' has an empty or malformed variable list",
                clause.location,
                code="clause-needs-arg",
            )
            return False
    elif clause.name in SCALAR_ARG_CLAUSES:
        if not clause.argument:
            diags.error(
                f"clause '{clause.name}' on '#pragma acc {directive.name}' requires an argument",
                clause.location,
                code="clause-needs-arg",
            )
            return False
    elif clause.name == "reduction":
        if not clause.argument or ":" not in clause.argument:
            diags.error(
                "reduction clause must have the form reduction(operator:var-list)",
                clause.location,
                code="bad-reduction",
            )
            return False
        op = clause.argument.split(":", 1)[0].strip()
        if op not in REDUCTION_OPERATORS:
            diags.error(
                f"invalid reduction operator '{op}'",
                clause.location,
                code="bad-reduction",
            )
            return False
        if not clause.variables():
            diags.error(
                "reduction clause has an empty variable list",
                clause.location,
                code="bad-reduction",
            )
            return False
    elif clause.name == "default":
        if clause.argument not in DEFAULT_MODES:
            diags.error(
                f"default clause argument must be one of {sorted(DEFAULT_MODES)}, got {clause.argument!r}",
                clause.location,
                code="bad-default",
            )
            return False
    return True


def _validate_exclusions(directive: Directive, diags: DiagnosticEngine) -> bool:
    ok = True
    names = set(directive.clause_names())
    if "seq" in names and names & {"gang", "worker", "vector", "independent"}:
        diags.error(
            f"'seq' may not combine with gang/worker/vector/independent on "
            f"'#pragma acc {directive.name}'",
            directive.location,
            code="clause-conflict",
        )
        ok = False
    if directive.name == "atomic":
        kinds = names & {"read", "write", "update", "capture"}
        if len(kinds) > 1:
            diags.error(
                "atomic directive may specify at most one of read/write/update/capture",
                directive.location,
                code="clause-conflict",
            )
            ok = False
    if directive.name == "enter data" and not names & {"copyin", "create", "attach"}:
        diags.error(
            "'#pragma acc enter data' requires at least one copyin/create/attach clause",
            directive.location,
            code="missing-clause",
        )
        ok = False
    if directive.name == "exit data" and not names & {"copyout", "delete", "detach"}:
        diags.error(
            "'#pragma acc exit data' requires at least one copyout/delete/detach clause",
            directive.location,
            code="missing-clause",
        )
        ok = False
    if directive.name == "update" and not names & {"self", "host", "device"}:
        diags.error(
            "'#pragma acc update' requires at least one self/host/device clause",
            directive.location,
            code="missing-clause",
        )
        ok = False
    return ok
