"""Recursive-descent parser for the C/C++ subset used by V&V tests.

The grammar covers what the OpenACC/OpenMP validation corpora use:
global declarations, function definitions, the full statement set
(compound, ``if``/``else``, ``for``, ``while``, ``do``, ``return``,
``break``, ``continue``), declarations with pointers / arrays /
initializer lists, and the complete C expression grammar with correct
precedence.  ``#pragma acc`` / ``#pragma omp`` lines become
:class:`~repro.compiler.astnodes.DirectiveStmt` nodes wrapping the
statement they apply to.

Error handling follows driver conventions: a syntax error produces a
located diagnostic and the parser re-synchronizes at the next ``;`` or
``}`` so later errors still surface.  Unbalanced braces — the signature
of negative-probing issues 1 and 4 — produce the classic
``expected '}' at end of input`` / ``expected declaration`` errors.
"""

from __future__ import annotations

from repro.compiler import astnodes as ast
from repro.compiler import openacc_spec, openmp_spec
from repro.compiler.diagnostics import DiagnosticEngine, SourceLocation
from repro.compiler.lexer import Token, TokenKind
from repro.compiler.pragma import PragmaParseError, parse_directive

TYPE_KEYWORDS = frozenset(
    {"void", "char", "short", "int", "long", "float", "double", "signed",
     "unsigned", "_Bool", "bool", "const"}
)

#: Identifiers treated as type names (typedefs the headers provide).
TYPEDEF_NAMES = frozenset({"size_t", "ptrdiff_t", "int64_t", "int32_t", "uint64_t",
                           "uint32_t", "intptr_t", "uintptr_t", "FILE"})

STORAGE_KEYWORDS = frozenset({"static", "extern", "register", "inline", "auto"})


class ParseAbort(Exception):
    """Raised when the parser cannot make progress at top level."""


class Parser:
    """Parse a preprocessed token stream into a TranslationUnit."""

    def __init__(self, tokens: list[Token], diags: DiagnosticEngine, filename: str = "<input>"):
        self.tokens = tokens
        self.diags = diags
        self.filename = filename
        self.pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return tok

    def _at(self, *texts: str) -> bool:
        tok = self._peek()
        return (tok.kind in (TokenKind.PUNCT, TokenKind.KEYWORD)) and tok.text in texts

    def _at_eof(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    def _expect(self, text: str, context: str) -> Token | None:
        tok = self._peek()
        if tok.text == text and tok.kind in (TokenKind.PUNCT, TokenKind.KEYWORD):
            return self._advance()
        where = "end of input" if tok.kind is TokenKind.EOF else f"{tok.text!r}"
        self.diags.error(
            f"expected '{text}' {context}, found {where}",
            tok.location,
            code="syntax",
        )
        return None

    def _error(self, message: str, code: str = "syntax") -> None:
        self.diags.error(message, self._peek().location, code=code)

    def _synchronize(self, stop: tuple[str, ...] = (";", "}")) -> None:
        """Skip tokens until after a synchronizing punctuator."""
        depth = 0
        while not self._at_eof():
            tok = self._peek()
            if tok.is_punct("(", "[", "{"):
                depth += 1
            elif tok.is_punct(")", "]"):
                depth = max(0, depth - 1)
            elif tok.is_punct("}"):
                if depth == 0:
                    return
                depth -= 1
            elif tok.is_punct(";") and depth == 0:
                self._advance()
                return
            self._advance()

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------

    def _at_type(self) -> bool:
        tok = self._peek()
        if tok.kind is TokenKind.KEYWORD and tok.text in (TYPE_KEYWORDS | STORAGE_KEYWORDS):
            return True
        return tok.kind is TokenKind.IDENT and tok.text in TYPEDEF_NAMES

    def _parse_type(self) -> ast.CType | None:
        """Parse type specifiers + pointer declarator prefix."""
        const = False
        words: list[str] = []
        storage = None
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.KEYWORD and tok.text in STORAGE_KEYWORDS:
                storage = tok.text
                self._advance()
            elif tok.kind is TokenKind.KEYWORD and tok.text == "const":
                const = True
                self._advance()
            elif tok.kind is TokenKind.KEYWORD and tok.text in TYPE_KEYWORDS:
                words.append(tok.text)
                self._advance()
            elif tok.kind is TokenKind.IDENT and tok.text in TYPEDEF_NAMES and not words:
                words.append(tok.text)
                self._advance()
            else:
                break
        if not words:
            return None
        base = _canonical_base(words)
        ctype = ast.CType(base, 0, const)
        while self._at("*"):
            self._advance()
            if self._at("const"):
                self._advance()
            ctype = ctype.pointer_to()
        ctype_storage = storage  # kept for callers that care (unused today)
        del ctype_storage
        return ctype

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(filename=self.filename)
        guard = -1
        while not self._at_eof():
            if self.pos == guard:
                # no progress: consume one token to avoid livelock
                self._error(f"expected declaration, found {self._peek().text!r}", code="expected-declaration")
                self._advance()
            guard = self.pos
            tok = self._peek()
            if tok.kind is TokenKind.HASH_LINE:
                stmt = self._parse_pragma_statement(top_level=True)
                if stmt is not None and isinstance(stmt, ast.DirectiveStmt):
                    # declarative directives live outside functions; keep them
                    # as a pseudo-global so semantic analysis can see them.
                    unit.globals.append(
                        ast.Declaration(location=tok.location, declarators=[])
                    )
                continue
            if self._at(";"):
                self._advance()
                continue
            if self._at("}"):
                self._error("extraneous closing brace ('}') at top level", code="unbalanced-brace")
                self._advance()
                continue
            if not self._at_type():
                self._error(
                    f"expected declaration, found {tok.text!r}" if tok.kind is not TokenKind.EOF
                    else "expected declaration at end of input",
                    code="expected-declaration",
                )
                self._synchronize()
                continue
            self._parse_external_declaration(unit)
        return unit

    def _parse_external_declaration(self, unit: ast.TranslationUnit) -> None:
        start = self._peek().location
        ctype = self._parse_type()
        if ctype is None:
            self._error("expected a type specifier", code="expected-declaration")
            self._synchronize()
            return
        name_tok = self._peek()
        if name_tok.kind is not TokenKind.IDENT:
            self._error(
                f"expected an identifier after type, found {name_tok.text!r}",
                code="expected-declaration",
            )
            self._synchronize()
            return
        self._advance()
        if self._at("("):
            fn = self._parse_function_rest(name_tok.text, ctype, name_tok.location)
            if fn is not None:
                unit.functions.append(fn)
        else:
            decl = self._parse_declaration_rest(name_tok.text, ctype, name_tok.location, start)
            if decl is not None:
                unit.globals.append(decl)

    def _parse_function_rest(
        self, name: str, return_type: ast.CType, loc: SourceLocation
    ) -> ast.FunctionDef | None:
        self._expect("(", f"after function name '{name}'")
        params: list[ast.Param] = []
        variadic = False
        if not self._at(")"):
            while True:
                if self._at("..."):
                    self._advance()
                    variadic = True
                    break
                if self._at("void") and self._peek(1).is_punct(")"):
                    self._advance()
                    break
                ptype = self._parse_type()
                if ptype is None:
                    self._error("expected a parameter type", code="syntax")
                    self._synchronize((")", ";"))
                    break
                pname = ""
                ploc = self._peek().location
                if self._peek().kind is TokenKind.IDENT:
                    pname = self._advance().text
                is_array = False
                while self._at("["):
                    self._advance()
                    while not self._at("]") and not self._at_eof():
                        self._advance()
                    self._expect("]", "in array parameter")
                    is_array = True
                params.append(ast.Param(pname, ptype, is_array, ploc))
                if self._at(","):
                    self._advance()
                    continue
                break
        if self._expect(")", f"to close parameter list of '{name}'") is None:
            self._synchronize()
            return None
        if self._at(";"):
            self._advance()
            return ast.FunctionDef(name, return_type, params, None, loc, variadic)
        if not self._at("{"):
            self._error(f"expected function body after declarator of '{name}'")
            self._synchronize()
            return None
        body = self._parse_compound()
        return ast.FunctionDef(name, return_type, params, body, loc, variadic)

    def _parse_declaration_rest(
        self,
        first_name: str,
        ctype: ast.CType,
        first_loc: SourceLocation,
        stmt_loc: SourceLocation,
    ) -> ast.Declaration | None:
        declarators = []
        decl = self._parse_declarator_tail(first_name, ctype, first_loc)
        if decl is None:
            return None
        declarators.append(decl)
        while self._at(","):
            self._advance()
            extra_type = ctype
            # additional '*' per declarator: int a, *p;
            while self._at("*"):
                self._advance()
                extra_type = extra_type.pointer_to()
            tok = self._peek()
            if tok.kind is not TokenKind.IDENT:
                self._error("expected an identifier in declaration")
                self._synchronize()
                return ast.Declaration(location=stmt_loc, declarators=declarators)
            self._advance()
            decl = self._parse_declarator_tail(tok.text, extra_type, tok.location)
            if decl is None:
                return ast.Declaration(location=stmt_loc, declarators=declarators)
            declarators.append(decl)
        if self._expect(";", "at end of declaration") is None:
            self._synchronize()
        return ast.Declaration(location=stmt_loc, declarators=declarators)

    def _parse_declarator_tail(
        self, name: str, ctype: ast.CType, loc: SourceLocation
    ) -> ast.Declarator | None:
        dims: list[ast.Expr | None] = []
        while self._at("["):
            self._advance()
            if self._at("]"):
                self._advance()
                dims.append(None)
                continue
            dim = self.parse_expression()
            if dim is None:
                return None
            if self._expect("]", "to close array dimension") is None:
                return None
            dims.append(dim)
        init = None
        if self._at("="):
            self._advance()
            init = self._parse_initializer()
            if init is None:
                return None
        return ast.Declarator(name, ctype, dims, init, loc)

    def _parse_initializer(self) -> ast.Expr | None:
        if self._at("{"):
            loc = self._advance().location
            items: list[ast.Expr] = []
            while not self._at("}") and not self._at_eof():
                item = self._parse_initializer()
                if item is None:
                    return None
                items.append(item)
                if self._at(","):
                    self._advance()
            if self._expect("}", "to close initializer list") is None:
                return None
            return ast.InitList(loc, items)
        return self.parse_assignment()

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _parse_compound(self) -> ast.Compound:
        open_tok = self._expect("{", "to open block")
        loc = open_tok.location if open_tok else self._peek().location
        body: list[ast.Stmt] = []
        guard = -1
        while not self._at("}"):
            if self._at_eof():
                self.diags.error(
                    "expected '}' at end of input (unbalanced braces)",
                    self._peek().location,
                    code="unbalanced-brace",
                )
                return ast.Compound(loc, body)
            if self.pos == guard:
                self._advance()
            guard = self.pos
            stmt = self.parse_statement()
            if stmt is not None:
                body.append(stmt)
        self._advance()  # consume '}'
        return ast.Compound(loc, body)

    def parse_statement(self) -> ast.Stmt | None:
        tok = self._peek()
        if tok.kind is TokenKind.HASH_LINE:
            return self._parse_pragma_statement()
        if self._at("{"):
            return self._parse_compound()
        if self._at(";"):
            self._advance()
            return ast.ExprStmt(tok.location, None)
        if self._at("if"):
            return self._parse_if()
        if self._at("for"):
            return self._parse_for()
        if self._at("while"):
            return self._parse_while()
        if self._at("do"):
            return self._parse_do()
        if self._at("return"):
            self._advance()
            value = None
            if not self._at(";"):
                value = self.parse_expression()
                if value is None:
                    self._synchronize()
                    return None
            self._expect(";", "after return statement")
            return ast.Return(tok.location, value)
        if self._at("break"):
            self._advance()
            self._expect(";", "after 'break'")
            return ast.Break(tok.location)
        if self._at("continue"):
            self._advance()
            self._expect(";", "after 'continue'")
            return ast.Continue(tok.location)
        if self._at_type():
            ctype = self._parse_type()
            if ctype is None:
                self._synchronize()
                return None
            name_tok = self._peek()
            if name_tok.kind is not TokenKind.IDENT:
                self._error(
                    f"expected an identifier in declaration, found {name_tok.text!r}"
                )
                self._synchronize()
                return None
            self._advance()
            return self._parse_declaration_rest(name_tok.text, ctype, name_tok.location, tok.location)
        # expression statement
        expr = self.parse_expression()
        if expr is None:
            self._synchronize()
            return None
        self._expect(";", "after expression statement")
        return ast.ExprStmt(tok.location, expr)

    def _parse_if(self) -> ast.Stmt | None:
        loc = self._advance().location  # 'if'
        if self._expect("(", "after 'if'") is None:
            self._synchronize()
            return None
        cond = self.parse_expression()
        if cond is None:
            self._synchronize()
            return None
        if self._expect(")", "to close 'if' condition") is None:
            self._synchronize()
            return None
        then = self.parse_statement()
        if then is None:
            return None
        otherwise = None
        if self._at("else"):
            self._advance()
            otherwise = self.parse_statement()
        return ast.If(loc, cond, then, otherwise)

    def _parse_while(self) -> ast.Stmt | None:
        loc = self._advance().location
        if self._expect("(", "after 'while'") is None:
            self._synchronize()
            return None
        cond = self.parse_expression()
        if cond is None:
            self._synchronize()
            return None
        if self._expect(")", "to close 'while' condition") is None:
            self._synchronize()
            return None
        body = self.parse_statement()
        if body is None:
            return None
        return ast.While(loc, cond, body)

    def _parse_do(self) -> ast.Stmt | None:
        loc = self._advance().location
        body = self.parse_statement()
        if body is None:
            return None
        if self._expect("while", "after 'do' body") is None:
            self._synchronize()
            return None
        if self._expect("(", "after 'do ... while'") is None:
            self._synchronize()
            return None
        cond = self.parse_expression()
        if cond is None:
            self._synchronize()
            return None
        self._expect(")", "to close 'do ... while' condition")
        self._expect(";", "after 'do ... while'")
        return ast.DoWhile(loc, body, cond)

    def _parse_for(self) -> ast.Stmt | None:
        loc = self._advance().location
        if self._expect("(", "after 'for'") is None:
            self._synchronize()
            return None
        init: ast.Declaration | ast.ExprStmt | None = None
        if self._at(";"):
            self._advance()
        elif self._at_type():
            start = self._peek().location
            ctype = self._parse_type()
            name_tok = self._peek()
            if ctype is None or name_tok.kind is not TokenKind.IDENT:
                self._error("expected loop variable declaration in 'for'")
                self._synchronize()
                return None
            self._advance()
            init = self._parse_declaration_rest(name_tok.text, ctype, name_tok.location, start)
        else:
            expr = self.parse_expression()
            if expr is None:
                self._synchronize()
                return None
            init = ast.ExprStmt(loc, expr)
            self._expect(";", "after 'for' initializer")
        cond = None
        if not self._at(";"):
            cond = self.parse_expression()
            if cond is None:
                self._synchronize()
                return None
        self._expect(";", "after 'for' condition")
        step = None
        if not self._at(")"):
            step = self.parse_expression()
            if step is None:
                self._synchronize()
                return None
        if self._expect(")", "to close 'for' header") is None:
            self._synchronize()
            return None
        body = self.parse_statement()
        if body is None:
            return None
        return ast.For(loc, init, cond, step, body)

    def _parse_pragma_statement(self, top_level: bool = False) -> ast.Stmt | None:
        tok = self._advance()
        try:
            model_names, clause_names = _tables_for(tok.text)
        except PragmaParseError:
            self.diags.error(f"malformed preprocessor line: {tok.text!r}", tok.location, code="syntax")
            return None
        if model_names is None:
            return None  # '#pragma once' etc.: silently ignore
        directive = parse_directive(tok.text, tok.location, self.diags, model_names, clause_names)
        if directive is None:
            return None
        spec_mod = openacc_spec if directive.model == "acc" else openmp_spec
        spec = spec_mod.DIRECTIVES.get(directive.name)
        construct: ast.Stmt | None = None
        if spec is not None and not spec.standalone and not top_level:
            construct = self.parse_statement()
            if construct is None:
                self.diags.error(
                    f"'#pragma {directive.model} {directive.name}' must be followed by a statement",
                    tok.location,
                    code="directive-needs-construct",
                )
        return ast.DirectiveStmt(tok.location, directive, construct)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------

    _BINARY_PRECEDENCE = {
        "||": 1,
        "&&": 2,
        "|": 3,
        "^": 4,
        "&": 5,
        "==": 6, "!=": 6,
        "<": 7, ">": 7, "<=": 7, ">=": 7,
        "<<": 8, ">>": 8,
        "+": 9, "-": 9,
        "*": 10, "/": 10, "%": 10,
    }

    _ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})

    def parse_expression(self) -> ast.Expr | None:
        expr = self.parse_assignment()
        if expr is None:
            return None
        if self._at(","):
            parts = [expr]
            loc = expr.location
            while self._at(","):
                self._advance()
                nxt = self.parse_assignment()
                if nxt is None:
                    return None
                parts.append(nxt)
            return ast.CommaExpr(loc, parts)
        return expr

    def parse_assignment(self) -> ast.Expr | None:
        left = self._parse_conditional()
        if left is None:
            return None
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in self._ASSIGN_OPS:
            self._advance()
            right = self.parse_assignment()
            if right is None:
                return None
            return ast.Assignment(left.location, tok.text, left, right)
        return left

    def _parse_conditional(self) -> ast.Expr | None:
        cond = self._parse_binary(1)
        if cond is None:
            return None
        if self._at("?"):
            self._advance()
            then = self.parse_assignment()
            if then is None:
                return None
            if self._expect(":", "in conditional expression") is None:
                return None
            otherwise = self.parse_assignment()
            if otherwise is None:
                return None
            return ast.Conditional(cond.location, cond, then, otherwise)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr | None:
        left = self._parse_unary()
        if left is None:
            return None
        while True:
            tok = self._peek()
            prec = self._BINARY_PRECEDENCE.get(tok.text) if tok.kind is TokenKind.PUNCT else None
            if prec is None or prec < min_prec:
                return left
            self._advance()
            right = self._parse_binary(prec + 1)
            if right is None:
                return None
            left = ast.BinaryOp(left.location, tok.text, left, right)

    def _parse_unary(self) -> ast.Expr | None:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "+", "!", "~", "*", "&"):
            self._advance()
            operand = self._parse_unary()
            if operand is None:
                return None
            return ast.UnaryOp(tok.location, tok.text, operand, prefix=True)
        if tok.kind is TokenKind.PUNCT and tok.text in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            if operand is None:
                return None
            return ast.UnaryOp(tok.location, tok.text, operand, prefix=True)
        if tok.is_keyword("sizeof"):
            self._advance()
            if self._at("(") and self._is_type_ahead(1):
                self._advance()
                target = self._parse_type()
                self._expect(")", "to close sizeof")
                return ast.SizeOf(tok.location, target_type=target)
            operand = self._parse_unary()
            if operand is None:
                return None
            return ast.SizeOf(tok.location, operand=operand)
        # cast: '(' type ')' unary
        if self._at("(") and self._is_type_ahead(1):
            self._advance()
            target = self._parse_type()
            if target is None or self._expect(")", "to close cast") is None:
                return None
            operand = self._parse_unary()
            if operand is None:
                return None
            return ast.Cast(tok.location, target, operand)
        return self._parse_postfix()

    def _is_type_ahead(self, offset: int) -> bool:
        tok = self._peek(offset)
        if tok.kind is TokenKind.KEYWORD and tok.text in TYPE_KEYWORDS:
            return True
        return tok.kind is TokenKind.IDENT and tok.text in TYPEDEF_NAMES

    def _parse_postfix(self) -> ast.Expr | None:
        expr = self._parse_primary()
        if expr is None:
            return None
        while True:
            tok = self._peek()
            if tok.is_punct("("):
                if not isinstance(expr, ast.Identifier):
                    self._error("calls through expressions are not supported by this front-end")
                    return None
                self._advance()
                args: list[ast.Expr] = []
                if not self._at(")"):
                    while True:
                        arg = self.parse_assignment()
                        if arg is None:
                            return None
                        args.append(arg)
                        if self._at(","):
                            self._advance()
                            continue
                        break
                if self._expect(")", f"to close call to '{expr.name}'") is None:
                    return None
                expr = ast.Call(expr.location, expr.name, args)
            elif tok.is_punct("["):
                self._advance()
                index = self.parse_expression()
                if index is None:
                    return None
                if self._expect("]", "to close subscript") is None:
                    return None
                expr = ast.Index(expr.location, expr, index)
            elif tok.is_punct(".", "->"):
                self._advance()
                member_tok = self._peek()
                if member_tok.kind is not TokenKind.IDENT:
                    self._error("expected member name after '.'")
                    return None
                self._advance()
                expr = ast.Member(expr.location, expr, member_tok.text, arrow=tok.text == "->")
            elif tok.is_punct("++", "--"):
                self._advance()
                expr = ast.UnaryOp(expr.location, tok.text, expr, prefix=False)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr | None:
        tok = self._peek()
        if tok.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLiteral(tok.location, _parse_int(tok.text), tok.text)
        if tok.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLiteral(tok.location, float(tok.text.rstrip("fFlL")), tok.text)
        if tok.kind is TokenKind.STRING_LIT:
            self._advance()
            value = _unescape(tok.text[1:-1])
            # adjacent string literal concatenation
            while self._peek().kind is TokenKind.STRING_LIT:
                nxt = self._advance()
                value += _unescape(nxt.text[1:-1])
            return ast.StringLiteral(tok.location, value)
        if tok.kind is TokenKind.CHAR_LIT:
            self._advance()
            return ast.CharLiteral(tok.location, _unescape(tok.text[1:-1]))
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.Identifier(tok.location, tok.text)
        if tok.is_keyword("true"):
            self._advance()
            return ast.IntLiteral(tok.location, 1, "1")
        if tok.is_keyword("false"):
            self._advance()
            return ast.IntLiteral(tok.location, 0, "0")
        if tok.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            if expr is None:
                return None
            if self._expect(")", "to close parenthesized expression") is None:
                return None
            return expr
        where = "end of input" if tok.kind is TokenKind.EOF else f"{tok.text!r}"
        self._error(f"expected an expression, found {where}")
        return None


def _tables_for(pragma_text: str):
    """Select directive/clause tables for a pragma line's model."""
    from repro.compiler.pragma import split_pragma_line

    model, _ = split_pragma_line(pragma_text)
    if model == "acc":
        return openacc_spec.DIRECTIVE_NAMES, openacc_spec.CLAUSE_NAMES
    if model == "omp":
        return openmp_spec.DIRECTIVE_NAMES, openmp_spec.CLAUSE_NAMES
    return None, None


def _canonical_base(words: list[str]) -> str:
    """Fold multi-word specifiers to a canonical base-type spelling."""
    kind = [w for w in words if w not in ("signed",)]
    if not kind:
        return "int"
    if "double" in kind:
        return "long double" if kind.count("long") else "double"
    if "float" in kind:
        return "float"
    if "char" in kind:
        return "unsigned char" if "unsigned" in kind else "char"
    if "void" in kind:
        return "void"
    if "_Bool" in kind or "bool" in kind:
        return "int"
    unsigned = "unsigned" in kind
    longs = kind.count("long")
    short = "short" in kind
    base = "short" if short else ("long long" if longs >= 2 else ("long" if longs == 1 else "int"))
    if kind == ["size_t"] or (len(kind) == 1 and kind[0] in TYPEDEF_NAMES):
        return "unsigned long" if kind[0] == "size_t" else "long"
    return f"unsigned {base}" if unsigned else base


def _parse_int(text: str) -> int:
    body = text.rstrip("uUlL")
    try:
        if body.lower().startswith("0x"):
            return int(body, 16)
        if body.startswith("0") and len(body) > 1 and body.isdigit():
            return int(body, 8)
        return int(body)
    except ValueError:
        return 0


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"', "'": "'",
            "a": "\a", "b": "\b", "f": "\f", "v": "\v", "%": "%"}


def _unescape(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            out.append(_ESCAPES.get(text[i + 1], text[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)
