"""The compiler driver: source text in, (return code, stdout, stderr) out.

:class:`Compiler` wires the front-end stages together the way ``nvc`` or
``clang`` does, and produces a :class:`CompileResult` carrying exactly
the observables the validation pipeline and the agent-based LLM judge
consume: the driver's return code, stdout, and rendered stderr — plus
the analyzed AST (the "object file") for the execution stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.keys import compile_key
from repro.compiler import astnodes as ast
from repro.compiler.cparser import Parser
from repro.compiler.diagnostics import DiagnosticEngine, TooManyErrors
from repro.compiler.fortran import FortranFrontEnd
from repro.compiler.lexer import Lexer
from repro.compiler.preprocessor import Preprocessor
from repro.compiler.semantic import SemanticAnalyzer, SemanticInfo

C_EXTENSIONS = (".c",)
CPP_EXTENSIONS = (".cpp", ".cxx", ".cc", ".C")
FORTRAN_EXTENSIONS = (".f90", ".f95", ".f03", ".F90", ".f")


def detect_language(filename: str) -> str:
    """Map a filename to 'c', 'c++' or 'fortran' (default 'c')."""
    lower = filename.lower()
    for ext in FORTRAN_EXTENSIONS:
        if lower.endswith(ext.lower()):
            return "fortran"
    if filename.endswith(".C"):  # big-C is C++, little-c is C
        return "c++"
    for ext in (".cpp", ".cxx", ".cc"):
        if lower.endswith(ext):
            return "c++"
    return "c"


def testfile_language(filename: str) -> str:
    """Map a filename to a :class:`TestFile` language ('c'|'cpp'|'f90').

    The one place the driver's language names ('c++', 'fortran') are
    translated to the corpus dialect tags; the validator and the
    service's judge endpoint both use it, so they can never diverge.
    """
    detected = detect_language(filename)
    if detected == "fortran":
        return "f90"
    return "cpp" if detected == "c++" else "c"


@dataclass
class CompileResult:
    """Everything a driver invocation produces."""

    returncode: int
    stdout: str
    stderr: str
    filename: str
    language: str
    unit: ast.TranslationUnit | None = None
    info: SemanticInfo | None = None
    diagnostic_codes: list[str] = field(default_factory=list)
    error_count: int = 0
    warning_count: int = 0
    #: content address of (toolchain fingerprint, filename, source);
    #: empty for results built outside a Compiler (tests, environment
    #: substitutions) — downstream caches skip such results.
    content_key: str = ""

    @property
    def ok(self) -> bool:
        return self.returncode == 0

    def has_code(self, code: str) -> bool:
        return code in self.diagnostic_codes


class Compiler:
    """A simulated OpenACC/OpenMP toolchain driver.

    Parameters
    ----------
    model:
        ``'acc'`` (think ``nvc -acc``) or ``'omp'`` (think
        ``clang -fopenmp``).  Controls which feature-test macro is
        predefined and, for OpenMP, the maximum supported version.
    openmp_max_version:
        Directives newer than this are rejected with
        ``unsupported-feature`` — mirrors the paper's use of an
        LLVM toolchain that is fully compliant only up to 4.5.
    """

    def __init__(self, model: str = "acc", openmp_max_version: float = 4.5):
        if model not in ("acc", "omp"):
            raise ValueError(f"model must be 'acc' or 'omp', got {model!r}")
        self.model = model
        self.openmp_max_version = openmp_max_version

    @property
    def name(self) -> str:
        return "nvc (simulated)" if self.model == "acc" else "clang -fopenmp (simulated)"

    def fingerprint(self) -> str:
        """Configuration identity for content-addressed caching."""
        return f"compiler:{self.model}:{self.openmp_max_version}"

    def language_macros(self) -> dict[str, str]:
        macros = {"__LINE__": "0", "__STDC__": "1"}
        if self.model == "acc":
            macros["_OPENACC"] = "201711"
        else:
            macros["_OPENMP"] = "201511"  # 4.5
        return macros

    # ------------------------------------------------------------------

    def compile(self, source: str, filename: str = "<input>") -> CompileResult:
        """Compile one translation unit; never raises on bad input."""
        language = detect_language(filename)
        diags = DiagnosticEngine()
        unit: ast.TranslationUnit | None = None
        info: SemanticInfo | None = None
        try:
            if language == "fortran":
                front = FortranFrontEnd(diags, filename)
                unit = front.parse(source)
            else:
                lexer = Lexer(source, filename, diags)
                tokens = lexer.tokenize()
                pp = Preprocessor(diags, self.language_macros())
                ppresult = pp.run(tokens)
                parser = Parser(ppresult.tokens, diags, filename)
                unit = parser.parse_translation_unit()
                unit.includes = ppresult.includes
                unit.defines = ppresult.defines
            if not diags.has_errors or diags.error_count < diags.error_limit:
                analyzer = SemanticAnalyzer(diags, self.openmp_max_version)
                info = analyzer.analyze(unit)
        except TooManyErrors:
            pass  # diagnostics already hold the errors
        except RecursionError:
            diags.fatal("input too deeply nested for this front-end", code="too-complex")

        stderr = diags.render_stderr()
        returncode = 0 if not diags.has_errors else (1 if diags.error_count < diags.error_limit else 2)
        return CompileResult(
            content_key=compile_key(self.fingerprint(), filename, source),
            returncode=returncode,
            stdout="",
            stderr=stderr,
            filename=filename,
            language=language,
            unit=unit if not diags.has_errors else unit,
            info=info,
            diagnostic_codes=diags.codes(),
            error_count=diags.error_count,
            warning_count=diags.warning_count,
        )
