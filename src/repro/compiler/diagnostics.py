"""Compiler diagnostics: severities, messages, and the diagnostic engine.

The driver renders collected diagnostics into the ``stderr`` text that a
real compiler would print, which is in turn what the agent-based LLM
judge receives inside its prompt.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Severity levels, ordered so ``max()`` picks the worst."""

    NOTE = 0
    WARNING = 1
    ERROR = 2
    FATAL = 3

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class SourceLocation:
    """A location in a source file (1-based line/column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.filename}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Diagnostic:
    """One compiler message.

    ``code`` is a short machine-readable identifier (e.g. ``undeclared``,
    ``unbalanced-brace``, ``bad-directive``) used by tests and by the
    experiment analysis to categorize why a file was rejected.
    """

    severity: Severity
    message: str
    location: SourceLocation | None = None
    code: str = "generic"

    def render(self) -> str:
        """Render the diagnostic the way a driver prints it."""
        loc = f"{self.location}: " if self.location is not None else ""
        return f"{loc}{self.severity.label}: {self.message} [-W{self.code}]"


class TooManyErrors(Exception):
    """Raised internally when the error limit is hit (fatal stop)."""


@dataclass
class DiagnosticEngine:
    """Collects diagnostics during a compilation.

    Mirrors the behaviour of clang/nvc drivers: compilation continues
    after recoverable errors (to report several problems at once) but
    aborts after ``error_limit`` errors.
    """

    error_limit: int = 20
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def emit(
        self,
        severity: Severity,
        message: str,
        location: SourceLocation | None = None,
        code: str = "generic",
    ) -> None:
        self.diagnostics.append(Diagnostic(severity, message, location, code))
        if severity >= Severity.ERROR and self.error_count >= self.error_limit:
            raise TooManyErrors(f"too many errors emitted ({self.error_count})")

    def note(self, message: str, location: SourceLocation | None = None, code: str = "note") -> None:
        self.emit(Severity.NOTE, message, location, code)

    def warn(self, message: str, location: SourceLocation | None = None, code: str = "warning") -> None:
        self.emit(Severity.WARNING, message, location, code)

    def error(self, message: str, location: SourceLocation | None = None, code: str = "error") -> None:
        self.emit(Severity.ERROR, message, location, code)

    def fatal(self, message: str, location: SourceLocation | None = None, code: str = "fatal") -> None:
        self.emit(Severity.FATAL, message, location, code)

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity >= Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return self.error_count > 0

    def codes(self) -> list[str]:
        """All distinct diagnostic codes, in first-seen order."""
        seen: list[str] = []
        for d in self.diagnostics:
            if d.code not in seen:
                seen.append(d.code)
        return seen

    def render_stderr(self) -> str:
        """Render all diagnostics plus a summary line, driver style."""
        lines = [d.render() for d in self.diagnostics]
        if self.has_errors:
            lines.append(
                f"{self.error_count} error{'s' if self.error_count != 1 else ''} generated."
            )
        elif self.warning_count:
            lines.append(
                f"{self.warning_count} warning{'s' if self.warning_count != 1 else ''} generated."
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self.diagnostics.clear()
