"""Parsing of ``#pragma acc`` / ``#pragma omp`` lines into directives.

A directive line is parsed into a :class:`Directive` — the directive
name (longest match against the model's spec table, so ``parallel loop``
and ``target teams distribute parallel for`` resolve as single
directives) plus a list of :class:`Clause` objects.  Validation against
the spec (allowed clauses, argument shapes, association requirements)
lives in :mod:`repro.compiler.openacc_spec` and
:mod:`repro.compiler.openmp_spec`; this module is purely syntactic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.compiler.diagnostics import DiagnosticEngine, SourceLocation


@dataclass
class Clause:
    """One clause: ``name`` or ``name(argument-text)``.

    ``argument`` keeps the raw text between the parentheses;
    :meth:`variables` splits it into the comma-separated list most data
    clauses carry, stripping array-section syntax (``a[0:N]`` → ``a``).
    """

    name: str
    argument: str | None = None
    location: SourceLocation | None = None

    @property
    def has_argument(self) -> bool:
        return self.argument is not None

    def variables(self) -> list[str]:
        if not self.argument:
            return []
        text = self.argument
        # reduction(+:a,b) / map(tofrom: x[0:n]) -> keep only the list part;
        # the separator is the first ':' outside brackets (array sections
        # like a[0:N] contain their own colons).
        if self.name in ("reduction", "map", "depend", "default", "schedule", "dist_schedule"):
            split = _top_level_colon(text)
            if split >= 0:
                text = text[split + 1 :]
        names: list[str] = []
        depth = 0
        current = []
        for ch in text:
            if ch in "([":
                depth += 1
            elif ch in ")]":
                depth = max(0, depth - 1)
            elif ch == "," and depth == 0:
                names.append("".join(current))
                current = []
                continue
            current.append(ch)
        if current:
            names.append("".join(current))
        out = []
        for name in names:
            name = name.strip()
            m = re.match(r"[A-Za-z_]\w*", name)
            if m:
                out.append(m.group(0))
        return out

    def modifier(self) -> str | None:
        """The part before the top-level ':' for reduction/map clauses."""
        if self.argument:
            split = _top_level_colon(self.argument)
            if split >= 0:
                return self.argument[:split].strip()
        return None

    def __str__(self) -> str:
        return f"{self.name}({self.argument})" if self.has_argument else self.name


@dataclass
class Directive:
    """A parsed directive: programming model, name, and clauses."""

    model: str  # 'acc' | 'omp'
    name: str  # canonical (space-joined) directive name
    clauses: list[Clause] = field(default_factory=list)
    location: SourceLocation | None = None
    raw: str = ""

    def clause(self, name: str) -> Clause | None:
        for clause in self.clauses:
            if clause.name == name:
                return clause
        return None

    def has_clause(self, name: str) -> bool:
        return self.clause(name) is not None

    def clause_names(self) -> list[str]:
        return [c.name for c in self.clauses]

    def __str__(self) -> str:
        parts = [f"#pragma {self.model} {self.name}"]
        parts.extend(str(c) for c in self.clauses)
        return " ".join(parts)


def _top_level_colon(text: str) -> int:
    """Index of the first ':' outside brackets/parens, or -1."""
    depth = 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth = max(0, depth - 1)
        elif ch == ":" and depth == 0:
            return i
    return -1


class PragmaParseError(Exception):
    """Raised when a pragma line cannot be parsed at all."""


_WORD = re.compile(r"[A-Za-z_]\w*")


def split_pragma_line(text: str) -> tuple[str, str]:
    """Split ``#pragma acc parallel ...`` into (model, tail).

    Returns ``("", full_tail)`` for non acc/omp pragmas (e.g. ``#pragma
    once``) which the caller should pass through silently.
    """
    body = text.lstrip("#").strip()
    if not body.startswith("pragma"):
        raise PragmaParseError(f"not a pragma line: {text!r}")
    tail = body[len("pragma"):].strip()
    m = _WORD.match(tail)
    if m and m.group(0) in ("acc", "omp"):
        return m.group(0), tail[m.end():].strip()
    return "", tail


def parse_directive(
    text: str,
    location: SourceLocation,
    diags: DiagnosticEngine,
    directive_names: frozenset[str] | set[str],
    clause_names: frozenset[str] | set[str],
) -> Directive | None:
    """Parse one pragma line against a model's name tables.

    ``directive_names`` contains canonical multi-word names ("parallel
    loop"); the parser consumes the longest prefix of words that forms a
    known directive, then parses clauses.  Unknown directives and
    malformed clause syntax produce *error* diagnostics (a real compiler
    rejects ``#pragma acc paralel loop``), matching negative-probing
    issue 0.
    """
    model, tail = split_pragma_line(text)
    if model == "":
        return None  # '#pragma once' etc. — not ours
    words = []
    rest = tail
    while True:
        m = _WORD.match(rest)
        if not m:
            break
        words.append(m.group(0))
        rest_after = rest[m.end():]
        stripped = rest_after.lstrip()
        # stop consuming words once the next char opens a clause argument
        if stripped.startswith("("):
            break
        rest = stripped
    if not words:
        diags.error(f"expected a directive name after '#pragma {model}'", location, code="bad-directive")
        return None

    # Longest-match directive name.
    name = None
    name_len = 0
    for k in range(len(words), 0, -1):
        candidate = " ".join(words[:k])
        if candidate in directive_names:
            name = candidate
            name_len = k
            break
    if name is None:
        diags.error(
            f"unrecognized '#pragma {model}' directive: '{words[0]}'",
            location,
            code="bad-directive",
        )
        return None

    # Everything after the directive name is the clause list.
    clause_text = tail
    for _ in range(name_len):
        clause_text = clause_text.lstrip()
        m = _WORD.match(clause_text)
        assert m is not None
        clause_text = clause_text[m.end():]
    clauses = _parse_clauses(clause_text.strip(), model, name, location, diags, clause_names)
    if clauses is None:
        return None
    return Directive(model=model, name=name, clauses=clauses, location=location, raw=text)


def _parse_clauses(
    text: str,
    model: str,
    directive: str,
    location: SourceLocation,
    diags: DiagnosticEngine,
    clause_names: frozenset[str] | set[str],
) -> list[Clause] | None:
    clauses: list[Clause] = []
    pos = 0
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch in " \t,":
            pos += 1
            continue
        m = _WORD.match(text, pos)
        if not m:
            diags.error(
                f"expected a clause on '#pragma {model} {directive}', found {text[pos:pos+10]!r}",
                location,
                code="bad-clause-syntax",
            )
            return None
        word = m.group(0)
        pos = m.end()
        if word not in clause_names:
            diags.error(
                f"invalid clause '{word}' on '#pragma {model} {directive}'",
                location,
                code="unknown-clause",
            )
            # keep scanning so multiple bad clauses all get reported
        argument = None
        # optional argument
        while pos < n and text[pos] in " \t":
            pos += 1
        if pos < n and text[pos] == "(":
            depth = 0
            start = pos + 1
            end = None
            while pos < n:
                if text[pos] == "(":
                    depth += 1
                elif text[pos] == ")":
                    depth -= 1
                    if depth == 0:
                        end = pos
                        break
                pos += 1
            if end is None:
                diags.error(
                    f"unbalanced parentheses in clause '{word}' on '#pragma {model} {directive}'",
                    location,
                    code="bad-clause-syntax",
                )
                return None
            argument = text[start:end].strip()
            pos = end + 1
        clauses.append(Clause(word, argument, location))
    return clauses
