"""Fortran-lite front-end for the OpenACC V&V Fortran tests.

The OpenACC corpus contains a small set of free-form Fortran tests.
Rather than duplicating the execution substrate, this front-end
translates the restricted Fortran subset the corpus uses into the same
AST the C parser produces, so semantic analysis and the interpreter are
shared.  Supported:

* ``program`` / ``end program`` units, ``implicit none``;
* type declarations ``integer :: i``, ``real(8) :: a(N)``,
  ``integer, parameter :: n = 100`` with initializers;
* assignment, ``do``/``end do``, block and logical ``if``,
  ``print *, ...``, ``stop [code]``;
* ``!$acc``/``!$omp`` directive sentinels (translated to the pragma
  grammar and validated by the same spec tables);
* Fortran operators (``.and.``, ``/=``, ...) mapped to C operators.

Errors mirror a Fortran compiler's: unbalanced ``do``/``end do`` or a
missing ``end program`` produce ``unbalanced-block`` errors — the
Fortran analog of C's unbalanced braces.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.compiler import astnodes as ast
from repro.compiler.cparser import Parser
from repro.compiler.diagnostics import DiagnosticEngine, SourceLocation
from repro.compiler.lexer import Lexer, TokenKind

_TYPE_MAP = {
    "integer": ast.INT,
    "real": ast.FLOAT,
    "real(4)": ast.FLOAT,
    "real(8)": ast.DOUBLE,
    "double precision": ast.DOUBLE,
    "logical": ast.INT,
}

_OPERATOR_MAP = [
    (r"\.and\.", "&&"),
    (r"\.or\.", "||"),
    (r"\.not\.", "!"),
    (r"\.eqv\.", "=="),
    (r"\.neqv\.", "!="),
    (r"\.eq\.", "=="),
    (r"\.ne\.", "!="),
    (r"\.lt\.", "<"),
    (r"\.le\.", "<="),
    (r"\.gt\.", ">"),
    (r"\.ge\.", ">="),
    (r"/=", "!="),
    (r"\.true\.", "1"),
    (r"\.false\.", "0"),
]

#: Fortran intrinsics mapped to interpreter builtins.
_INTRINSIC_MAP = {
    "abs": "fabs",
    "sqrt": "sqrt",
    "max": "fmax",
    "min": "fmin",
    "mod": "fmod",
    "real": "__to_real",
    "int": "__to_int",
    "dble": "__to_real",
}


@dataclass
class _Line:
    number: int
    text: str


class FortranFrontEnd:
    """Translate one Fortran source file into a C-style TranslationUnit."""

    def __init__(self, diags: DiagnosticEngine, filename: str = "<input>"):
        self.diags = diags
        self.filename = filename
        self.arrays: set[str] = set()
        self.declared: set[str] = set()

    # ------------------------------------------------------------------

    def parse(self, source: str) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(filename=self.filename)
        lines = self._logical_lines(source)
        body, has_program, has_end = self._parse_program(lines)
        if not has_program:
            self.diags.error(
                "missing 'program' statement (not a Fortran main program)",
                SourceLocation(self.filename, 1, 1),
                code="no-main",
            )
        if has_program and not has_end:
            self.diags.error(
                "missing 'end program' (unbalanced program unit)",
                SourceLocation(self.filename, max((l.number for l in lines), default=1), 1),
                code="unbalanced-block",
            )
        loc = SourceLocation(self.filename, 1, 1)
        # implicit 'return 0' at the end, like END PROGRAM
        body.append(ast.Return(loc, ast.IntLiteral(loc, 0, "0")))
        main = ast.FunctionDef(
            name="main",
            return_type=ast.INT,
            params=[],
            body=ast.Compound(loc, body),
            location=loc,
        )
        unit.functions.append(main)
        return unit

    # ------------------------------------------------------------------

    def _logical_lines(self, source: str) -> list[_Line]:
        """Strip comments, join ``&`` continuations, keep directive lines."""
        out: list[_Line] = []
        pending = ""
        pending_no = 0
        for idx, raw in enumerate(source.splitlines(), start=1):
            text = raw.rstrip()
            stripped = text.strip()
            is_directive = bool(re.match(r"!\$(acc|omp)\b", stripped, re.IGNORECASE))
            if not is_directive:
                # remove trailing comments (outside strings; corpus avoids '!' in strings)
                bang = text.find("!")
                if bang >= 0:
                    text = text[:bang].rstrip()
                    stripped = text.strip()
            if not stripped:
                continue
            if pending:
                text = pending + " " + stripped.lstrip("&").strip()
                stripped = text.strip()
            else:
                pending_no = idx
            if stripped.endswith("&"):
                pending = stripped.rstrip("&").strip()
                continue
            out.append(_Line(pending_no if pending else idx, stripped))
            pending = ""
        if pending:
            out.append(_Line(pending_no, pending))
        return out

    def _loc(self, line: _Line) -> SourceLocation:
        return SourceLocation(self.filename, line.number, 1)

    # ------------------------------------------------------------------

    def _parse_program(self, lines: list[_Line]) -> tuple[list[ast.Stmt], bool, bool]:
        body: list[ast.Stmt] = []
        has_program = False
        has_end = False
        stack: list[tuple[str, list[ast.Stmt], object]] = []  # (kind, stmt-list, node)
        current = body
        pending_directive: ast.DirectiveStmt | None = None
        seen_exec = False

        def push_stmt(stmt: ast.Stmt | None) -> None:
            nonlocal pending_directive
            if stmt is None:
                return
            if pending_directive is not None:
                pending_directive.construct = stmt
                current.append(pending_directive)
                pending_directive = None
            else:
                current.append(stmt)

        for line in lines:
            loc = self._loc(line)
            low = line.text.lower()

            if re.match(r"!\$(acc|omp)\b", low):
                directive_stmt = self._parse_directive_line(line)
                if directive_stmt is not None:
                    from repro.compiler import openacc_spec, openmp_spec

                    d = directive_stmt.directive
                    spec_mod = openacc_spec if d.model == "acc" else openmp_spec  # type: ignore[union-attr]
                    spec = spec_mod.DIRECTIVES.get(d.name)  # type: ignore[union-attr]
                    if spec is not None and spec.standalone:
                        current.append(directive_stmt)
                    elif low.startswith(("!$acc end", "!$omp end")):
                        current.append(directive_stmt)
                    else:
                        pending_directive = directive_stmt
                continue

            if pending_directive is not None and re.match(r"(end\s*do|end\s*if|else)", low):
                self.diags.error(
                    "directive must be followed by a do loop or block",
                    loc,
                    code="directive-needs-construct",
                )
                current.append(pending_directive)
                pending_directive = None

            if re.match(r"program\b", low):
                has_program = True
                continue
            if re.match(r"end\s*program\b|^end$", low):
                has_end = True
                continue
            if re.match(r"implicit\s+none\b", low):
                continue
            if re.match(r"use\s+\w+", low):
                continue

            m = re.match(r"(integer|real(\(\d\))?|double\s+precision|logical)\s*(,\s*parameter)?\s*::\s*(.+)", low)
            if m:
                if seen_exec:
                    self.diags.error(
                        "declaration after executable statement",
                        loc,
                        code="late-declaration",
                    )
                push_stmt(self._parse_declaration(line, loc))
                continue

            seen_exec = True

            m = re.match(r"do\s+(\w+)\s*=\s*(.+?)\s*,\s*(.+?)(\s*,\s*(.+))?$", low)
            if m:
                for_stmt = self._parse_do(line, loc, m)
                if for_stmt is None:
                    continue
                push_stmt(for_stmt)
                stack.append(("do", current, for_stmt))
                current = for_stmt.body.body  # type: ignore[union-attr]
                continue
            if re.match(r"end\s*do\b", low):
                if not stack or stack[-1][0] != "do":
                    self.diags.error("'end do' without matching 'do'", loc, code="unbalanced-block")
                    continue
                _, current, _node = stack.pop()
                continue

            m = re.match(r"if\s*\((.+)\)\s*then$", low)
            if m:
                cond = self._parse_expr(m.group(1), loc)
                if cond is None:
                    continue
                if_stmt = ast.If(loc, cond, ast.Compound(loc, []), None)
                push_stmt(if_stmt)
                stack.append(("if", current, if_stmt))
                current = if_stmt.then.body  # type: ignore[union-attr]
                continue
            if re.match(r"else\s*$", low):
                if not stack or stack[-1][0] != "if":
                    self.diags.error("'else' without matching 'if'", loc, code="unbalanced-block")
                    continue
                _, _, node = stack[-1]
                assert isinstance(node, ast.If)
                node.otherwise = ast.Compound(loc, [])
                current = node.otherwise.body
                continue
            if re.match(r"end\s*if\b", low):
                if not stack or stack[-1][0] != "if":
                    self.diags.error("'end if' without matching 'if'", loc, code="unbalanced-block")
                    continue
                _, current, _node = stack.pop()
                continue

            m = re.match(r"if\s*\((.+)\)\s*(.+)$", low)
            if m and not m.group(2).strip().startswith("then"):
                cond = self._parse_expr(m.group(1), loc)
                inner = self._parse_simple_statement(m.group(2).strip(), loc)
                if cond is not None and inner is not None:
                    push_stmt(ast.If(loc, cond, inner, None))
                continue

            stmt = self._parse_simple_statement(line.text, loc)
            push_stmt(stmt)

        if pending_directive is not None:
            self.diags.error(
                "directive at end of program without an associated construct",
                pending_directive.location,
                code="directive-needs-construct",
            )
        for kind, _, node in stack:
            self.diags.error(
                f"unterminated '{kind}' block (missing 'end {kind}')",
                getattr(node, "location", SourceLocation(self.filename, 1, 1)),
                code="unbalanced-block",
            )
        return body, has_program, has_end

    # ------------------------------------------------------------------

    def _parse_declaration(self, line: _Line, loc: SourceLocation) -> ast.Declaration | None:
        low = line.text
        m = re.match(
            r"(?i)(integer|real(\(\d\))?|double\s+precision|logical)\s*(,\s*parameter)?\s*::\s*(.+)",
            low,
        )
        assert m is not None
        base = re.sub(r"\s+", " ", m.group(1).lower())
        ctype = _TYPE_MAP.get(base, ast.DOUBLE)
        declarators: list[ast.Declarator] = []
        for part in _split_top_commas(m.group(4)):
            part = part.strip()
            dm = re.match(r"(\w+)\s*(\(([^)]*)\))?\s*(=\s*(.+))?$", part)
            if dm is None:
                self.diags.error(f"malformed declaration entity: {part!r}", loc, code="syntax")
                continue
            name = dm.group(1)
            dims: list[ast.Expr | None] = []
            if dm.group(3) is not None:
                self.arrays.add(name.lower())
                for dim_text in dm.group(3).split(","):
                    dim = self._parse_expr(dim_text, loc)
                    dims.append(dim)
            init = None
            if dm.group(5) is not None:
                init = self._parse_expr(dm.group(5), loc)
            self.declared.add(name.lower())
            declarators.append(ast.Declarator(name.lower(), ctype, dims, init, loc))
        if not declarators:
            return None
        return ast.Declaration(location=loc, declarators=declarators)

    def _parse_do(self, line: _Line, loc: SourceLocation, m: "re.Match[str]") -> ast.For | None:
        var = m.group(1)
        start = self._parse_expr(m.group(2), loc)
        stop = self._parse_expr(m.group(3), loc)
        step = self._parse_expr(m.group(5), loc) if m.group(5) else None
        if start is None or stop is None:
            return None
        ident = ast.Identifier(loc, var)
        init = ast.ExprStmt(loc, ast.Assignment(loc, "=", ident, start))
        cond = ast.BinaryOp(loc, "<=", ast.Identifier(loc, var), stop)
        if step is not None:
            step_expr: ast.Expr = ast.Assignment(
                loc, "+=", ast.Identifier(loc, var), step
            )
        else:
            step_expr = ast.UnaryOp(loc, "++", ast.Identifier(loc, var), prefix=False)
        return ast.For(loc, init, cond, step_expr, ast.Compound(loc, []))

    def _parse_simple_statement(self, text: str, loc: SourceLocation) -> ast.Stmt | None:
        low = text.lower().strip()
        if low in ("continue", "cycle"):
            return ast.Continue(loc) if low == "cycle" else ast.ExprStmt(loc, None)
        if low == "exit":
            return ast.Break(loc)
        m = re.match(r"stop\s*(\d+)?$", low)
        if m:
            code = int(m.group(1)) if m.group(1) else 0
            return ast.Return(loc, ast.IntLiteral(loc, code, str(code)))
        m = re.match(r"print\s*\*\s*,\s*(.+)$", text, re.IGNORECASE)
        if m:
            args: list[ast.Expr] = []
            for part in _split_top_commas(m.group(1)):
                expr = self._parse_expr(part, loc)
                if expr is not None:
                    args.append(expr)
            return ast.ExprStmt(loc, ast.Call(loc, "__fortran_print", args))
        m = re.match(r"call\s+(\w+)\s*(\((.*)\))?$", text, re.IGNORECASE)
        if m:
            args = []
            if m.group(3):
                for part in _split_top_commas(m.group(3)):
                    expr = self._parse_expr(part, loc)
                    if expr is not None:
                        args.append(expr)
            return ast.ExprStmt(loc, ast.Call(loc, m.group(1).lower(), args))
        # assignment
        m = re.match(r"(.+?)=(.+)$", text)
        if m and "==" not in text.split("=")[0]:
            target = self._parse_expr(m.group(1), loc)
            value = self._parse_expr(m.group(2), loc)
            if target is None or value is None:
                return None
            return ast.ExprStmt(loc, ast.Assignment(loc, "=", target, value))
        self.diags.error(f"unrecognized Fortran statement: {text.strip()!r}", loc, code="syntax")
        return None

    def _parse_directive_line(self, line: _Line) -> ast.DirectiveStmt | None:
        loc = self._loc(line)
        text = line.text.strip()
        m = re.match(r"!\$(acc|omp)\s+(.*)$", text, re.IGNORECASE)
        if m is None:
            self.diags.error(f"malformed directive sentinel: {text!r}", loc, code="bad-directive")
            return None
        model = m.group(1).lower()
        body = m.group(2)
        # Fortran 'end' directives close block constructs; treat as no-ops
        # once validated as known names.
        if body.lower().startswith("end"):
            return ast.DirectiveStmt(loc, None, None) if False else None
        from repro.compiler import openacc_spec, openmp_spec
        from repro.compiler.pragma import parse_directive

        tables = openacc_spec if model == "acc" else openmp_spec
        # Fortran loop directives use 'do' instead of 'for'
        body = re.sub(r"\bdo\b", "loop" if model == "acc" else "do", body, flags=re.IGNORECASE)
        if model == "omp":
            body = re.sub(r"\bdo\b", "for", body, flags=re.IGNORECASE)
        directive = parse_directive(
            f"#pragma {model} {body}",
            loc,
            self.diags,
            tables.DIRECTIVE_NAMES,
            tables.CLAUSE_NAMES,
        )
        if directive is None:
            return None
        return ast.DirectiveStmt(loc, directive, None)

    # ------------------------------------------------------------------

    def _parse_expr(self, text: str, loc: SourceLocation) -> ast.Expr | None:
        """Parse a Fortran expression by translating it to C and reusing
        the C expression parser, then rewriting array refs."""
        c_text = text.strip()
        for pattern, repl in _OPERATOR_MAP:
            c_text = re.sub(pattern, repl, c_text, flags=re.IGNORECASE)
        # Fortran real literals like 1.0d0 -> 1.0e0
        c_text = re.sub(r"(\d+\.?\d*)[dD]([+-]?\d+)", r"\1e\2", c_text)
        diags = DiagnosticEngine()
        tokens = Lexer(c_text, self.filename, diags).tokenize()
        if diags.has_errors:
            self.diags.error(f"malformed expression: {text.strip()!r}", loc, code="syntax")
            return None
        parser = Parser(tokens, diags, self.filename)
        expr = parser.parse_expression()
        if expr is None or diags.has_errors or not parser._at_eof():
            self.diags.error(f"malformed expression: {text.strip()!r}", loc, code="syntax")
            return None
        return self._rewrite(expr, loc)

    def _rewrite(self, expr: ast.Expr, loc: SourceLocation) -> ast.Expr:
        """Rewrite parsed-as-C expression: array refs and intrinsics."""
        if isinstance(expr, ast.Call):
            name = expr.callee.lower()
            args = [self._rewrite(a, loc) for a in expr.args]
            if name in self.arrays:
                base: ast.Expr = ast.Identifier(expr.location, name)
                for arg in args:
                    # Fortran is 1-based; shift to 0-based
                    shifted = ast.BinaryOp(expr.location, "-", arg, ast.IntLiteral(expr.location, 1, "1"))
                    base = ast.Index(expr.location, base, shifted)
                return base
            mapped = _INTRINSIC_MAP.get(name, name)
            return ast.Call(expr.location, mapped, args)
        if isinstance(expr, ast.Identifier):
            return ast.Identifier(expr.location, expr.name.lower())
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.location, expr.op, self._rewrite(expr.left, loc), self._rewrite(expr.right, loc))
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.location, expr.op, self._rewrite(expr.operand, loc), expr.prefix)
        if isinstance(expr, ast.Assignment):
            return ast.Assignment(expr.location, expr.op, self._rewrite(expr.target, loc), self._rewrite(expr.value, loc))
        if isinstance(expr, ast.Conditional):
            return ast.Conditional(
                expr.location,
                self._rewrite(expr.cond, loc),
                self._rewrite(expr.then, loc),
                self._rewrite(expr.otherwise, loc),
            )
        if isinstance(expr, ast.Index):
            return ast.Index(expr.location, self._rewrite(expr.base, loc), self._rewrite(expr.index, loc))
        return expr


def _split_top_commas(text: str) -> list[str]:
    """Split on commas not nested inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]
