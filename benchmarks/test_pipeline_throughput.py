"""EXP-PIPE — §III-C claims: staging and early exit cut wasted work.

Three benches:

* worker-count scaling of the staged pipeline (parametrized 1/2/4);
* the early-exit ablation, asserting the judge-invocation savings the
  paper's pipeline design argues for;
* the content-addressed cache: a warm ``Experiments.all_tables()`` run
  must beat a cold one by >= 2x while producing byte-identical tables.
"""

import time

import pytest

from repro.cache.bundle import PipelineCache
from repro.experiments import ExperimentConfig, Experiments
from repro.llm.model import DeepSeekCoderSim
from repro.pipeline.engine import PipelineConfig, ValidationPipeline


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_pipeline_worker_scaling(benchmark, bench_population, workers):
    sample = bench_population[:16]
    pipeline = ValidationPipeline(
        PipelineConfig(
            flavor="acc",
            early_exit=True,
            compile_workers=workers,
            execute_workers=workers,
            judge_workers=workers,
        ),
        model=DeepSeekCoderSim(seed=9),
    )

    def run():
        return pipeline.run(sample)

    result = benchmark(run)
    assert len(result.records) == len(sample)


def test_early_exit_saves_judge_invocations(benchmark, bench_population, emit_artifact):
    sample = bench_population  # includes compile- and run-failing mutants
    model = DeepSeekCoderSim(seed=9)

    record_all = ValidationPipeline(
        PipelineConfig(flavor="acc", early_exit=False), model=model
    ).run(sample)
    early_exit_pipeline = ValidationPipeline(
        PipelineConfig(flavor="acc", early_exit=True), model=model
    )

    def run_early_exit():
        return early_exit_pipeline.run(sample)

    early = benchmark(run_early_exit)

    saved = early.stats.judge_invocations_saved
    all_judged = record_all.stats.judge.processed
    early_judged = early.stats.judge.processed
    sim_all = record_all.stats.judge.simulated_seconds
    sim_early = early.stats.judge.simulated_seconds

    emit_artifact(
        "pipeline_early_exit",
        "\n".join(
            [
                "Early-exit ablation (judge stage is the expensive one):",
                f"  files:                     {len(sample)}",
                f"  judge calls (record-all):  {all_judged}",
                f"  judge calls (early-exit):  {early_judged}",
                f"  judge calls saved:         {saved}",
                f"  simulated GPU s (record-all): {sim_all:8.1f}",
                f"  simulated GPU s (early-exit): {sim_early:8.1f}",
            ]
        ),
    )

    assert early_judged < all_judged
    assert saved == all_judged - early_judged
    assert sim_early < sim_all
    # verdicts must agree: early exit only skips already-failed files
    for rec_all, rec_early in zip(record_all.records, early.records):
        if rec_all.compiled and rec_all.ran_clean:
            assert rec_all.pipeline_says_valid == rec_early.pipeline_says_valid


def test_result_cache_warm_run_speedup(emit_artifact):
    """Warm (cached) table regeneration vs cold, on fresh instances.

    Two :class:`Experiments` instances with the same configuration
    share one :class:`PipelineCache`; the second must reuse every
    compile/execute/judge artifact instead of recomputing, making the
    run >= 2x faster with byte-identical table text.  (Cold vs warm is
    one-shot by nature, so this times explicitly instead of using the
    repeating ``benchmark`` fixture.)
    """
    config = ExperimentConfig(scale="tiny", cache_enabled=True)
    cache = PipelineCache()

    t0 = time.perf_counter()
    cold_tables = Experiments(config, cache=cache).all_tables()
    cold_seconds = time.perf_counter() - t0
    cold_misses = cache.misses

    t0 = time.perf_counter()
    warm_tables = Experiments(config, cache=cache).all_tables()
    warm_seconds = time.perf_counter() - t0

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    emit_artifact(
        "pipeline_cache_warm_vs_cold",
        "\n".join(
            [
                "Content-addressed cache: Experiments.all_tables(), tiny scale:",
                f"  cold run:   {cold_seconds:7.2f} s ({cold_misses} cache misses)",
                f"  warm run:   {warm_seconds:7.2f} s ({cache.hits} cache hits)",
                f"  speedup:    {speedup:7.1f}x",
            ]
        ),
    )

    assert [t.text for t in warm_tables] == [t.text for t in cold_tables]
    assert cache.hits > 0
    assert cold_seconds >= 2.0 * warm_seconds, (
        f"warm run only {speedup:.2f}x faster "
        f"(cold {cold_seconds:.2f}s, warm {warm_seconds:.2f}s)"
    )
