"""Ablation benches for the design choices DESIGN.md calls out.

* tool-information ablation: agent prompt with compile-only info vs
  compile+run info vs no tools — how much does each observable buy?
* prompt-style ablation: direct vs indirect agent prompting cost
  (the indirect prompt is longer: description + judgment).
"""

from repro.judge.agent import ToolReport, ToolRunner
from repro.judge.llmj import AgentLLMJ, DirectLLMJ
from repro.llm.model import DeepSeekCoderSim
from repro.metrics.accuracy import score_evaluations


def _verdicts(judge, population, reports=None):
    out = []
    for i, test in enumerate(population):
        if reports is None:
            out.append(judge.judge(test).says_valid)
        else:
            out.append(judge.judge(test, reports[i]).says_valid)
    return out


def test_tool_information_ablation(benchmark, bench_population, emit_artifact):
    population = bench_population
    model = DeepSeekCoderSim(seed=13)
    tools = ToolRunner("acc")
    full_reports = [tools.collect(test) for test in population]
    compile_only_reports = [
        ToolReport(
            compile_rc=r.compile_rc,
            compile_stderr=r.compile_stderr,
            compile_stdout=r.compile_stdout,
            run_rc=None,
            run_stderr=None,
            run_stdout=None,
            diagnostic_codes=r.diagnostic_codes,
        )
        for r in full_reports
    ]

    direct = DirectLLMJ(model, "acc")
    agent = AgentLLMJ(model, "acc", kind="direct", tools=tools)

    no_tools = score_evaluations("no tools", population, _verdicts(direct, population))
    compile_only = score_evaluations(
        "compile info", population, _verdicts(agent, population, compile_only_reports)
    )
    full = score_evaluations(
        "compile+run info", population, _verdicts(agent, population, full_reports)
    )

    emit_artifact(
        "ablation_tools",
        "\n".join(
            [
                "Tool-information ablation (OpenACC, accuracy overall):",
                f"  no tools:          {no_tools.overall_accuracy:6.1%}  bias {no_tools.bias:+.3f}",
                f"  compile info only: {compile_only.overall_accuracy:6.1%}  bias {compile_only.bias:+.3f}",
                f"  compile + run:     {full.overall_accuracy:6.1%}  bias {full.bias:+.3f}",
            ]
        ),
    )

    # each observable must help
    assert compile_only.overall_accuracy >= no_tools.overall_accuracy
    assert full.overall_accuracy >= compile_only.overall_accuracy - 0.05

    sample = population[:6]
    sample_reports = full_reports[:6]

    def judge_with_full_info():
        return _verdicts(agent, sample, sample_reports)

    benchmark(judge_with_full_info)


def test_prompt_style_cost(benchmark, bench_population):
    """Indirect prompting costs more tokens per judgment (longer
    completions: description + verdict)."""
    population = bench_population[:10]
    model = DeepSeekCoderSim(seed=14)
    tools = ToolRunner("acc")
    reports = [tools.collect(test) for test in population]
    judge1 = AgentLLMJ(model, "acc", kind="direct", tools=tools)
    judge2 = AgentLLMJ(model, "acc", kind="indirect", tools=tools)

    results1 = [judge1.judge(t, r) for t, r in zip(population, reports)]
    results2 = [judge2.judge(t, r) for t, r in zip(population, reports)]
    tokens1 = sum(r.completion_tokens for r in results1)
    tokens2 = sum(r.completion_tokens for r in results2)
    assert tokens2 > 0 and tokens1 > 0

    def indirect_pass():
        return [judge2.judge(t, r).says_valid for t, r in zip(population, reports)]

    benchmark(indirect_pass)
