"""EXP-SERVE — the serving layer's micro-batching economics.

A load generator drives a live daemon (ephemeral port, in-process
``ThreadingHTTPServer``) two ways over disjoint cold corpora:

* **serial** — one client, one request at a time: every request pays
  its own batch window and its own pipeline run;
* **concurrent** — many clients at once: the admission layer groups
  them into micro-batches that share one StageScheduler run and one
  PipelineCache.

Gates (the PR's acceptance criteria):

* concurrent micro-batched throughput >= 2x serial request-at-a-time;
* a warm-cache ``/v1/validate`` round-trips in < 50 ms;
* every verdict the service returns is byte-identical to a direct
  :class:`TestsuiteValidator` call on the same source.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cache.bundle import PipelineCache
from repro.core import TestsuiteValidator
from repro.corpus.generator import CorpusGenerator
from repro.service.client import ServiceClient
from repro.service.protocol import encode_verdict
from repro.service.server import make_server

#: Same knobs for both phases so the comparison isolates *concurrency*,
#: not configuration: a short batch window and modest worker pools.
SERVER_KNOBS = dict(
    max_batch_size=8,
    max_latency=0.01,
    queue_capacity=128,
    threads=2,
    judge_workers=2,
)


@pytest.fixture(scope="module")
def corpus():
    """48 distinct valid-leaning test files, split into two cold halves."""
    files = CorpusGenerator(seed=77).generate("acc", 48, languages=("c", "cpp"))
    return {f"serial_{i}_{t.name}" if i < 24 else f"conc_{i}_{t.name}": t.source
            for i, t in enumerate(files)}


def _start_server(cache=None):
    server = make_server(port=0, cache=cache, **SERVER_KNOBS)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop_server(server, thread):
    server.service.drain(timeout=30.0)
    server.shutdown()
    server.server_close()
    thread.join(10.0)


def _serial_phase(client, sources) -> tuple[float, dict[str, dict]]:
    responses = {}
    t0 = time.perf_counter()
    for name, source in sources.items():
        responses[name] = client.validate({name: source})
    return time.perf_counter() - t0, responses


def _concurrent_phase(server, sources, threads=12) -> tuple[float, dict[str, dict]]:
    host, port = server.server_address[:2]
    work = list(sources.items())
    responses: dict[str, dict] = {}
    errors: list[Exception] = []
    lock = threading.Lock()
    index = [0]

    def drive():
        client = ServiceClient(host=host, port=port, timeout=60, max_retries=8)
        while True:
            with lock:
                if index[0] >= len(work):
                    return
                name, source = work[index[0]]
                index[0] += 1
            try:
                response = client.validate({name: source})
            except Exception as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(exc)
                return
            with lock:
                responses[name] = response

    pool = [threading.Thread(target=drive) for _ in range(threads)]
    t0 = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(120.0)
    wall = time.perf_counter() - t0
    assert not errors, errors[:3]
    return wall, responses


def test_service_throughput_and_identity(corpus, emit_artifact):
    serial_sources = {k: v for k, v in corpus.items() if k.startswith("serial_")}
    concurrent_sources = {k: v for k, v in corpus.items() if k.startswith("conc_")}

    server, thread = _start_server(cache=PipelineCache())
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(host=host, port=port, timeout=60)

        # -- cold serial: one request at a time ------------------------
        serial_wall, serial_responses = _serial_phase(client, serial_sources)
        serial_rps = len(serial_sources) / serial_wall

        # -- cold concurrent: micro-batched ----------------------------
        concurrent_wall, concurrent_responses = _concurrent_phase(
            server, concurrent_sources
        )
        concurrent_rps = len(concurrent_sources) / concurrent_wall
        speedup = concurrent_rps / serial_rps

        # -- warm round-trip latency -----------------------------------
        warm_name = next(iter(serial_sources))
        warm_sources = {warm_name: serial_sources[warm_name]}
        client.validate(warm_sources)  # ensure warm
        warm_times = []
        for _ in range(5):
            t0 = time.perf_counter()
            client.validate(warm_sources)
            warm_times.append(time.perf_counter() - t0)
        warm_ms = min(warm_times) * 1000

        batching = server.service.batcher.snapshot()
    finally:
        _stop_server(server, thread)

    # -- byte-identity against direct pipeline calls -------------------
    validator = TestsuiteValidator(flavor="acc")
    direct = validator.validate_sources(corpus)
    for name, response in {**serial_responses, **concurrent_responses}.items():
        expected = [encode_verdict(direct.verdict_for(name))]
        assert response["verdicts"] == expected, f"verdict drift for {name}"

    emit_artifact(
        "service_throughput",
        "\n".join(
            [
                "Validation service: micro-batched vs serial (cold cache each):",
                f"  serial     : {len(serial_sources)} requests in "
                f"{serial_wall:6.2f}s = {serial_rps:6.1f} req/s",
                f"  concurrent : {len(concurrent_sources)} requests in "
                f"{concurrent_wall:6.2f}s = {concurrent_rps:6.1f} req/s",
                f"  speedup    : {speedup:5.2f}x (gate: >= 2x)",
                f"  warm /v1/validate round-trip: {warm_ms:5.1f} ms (gate: < 50 ms)",
                f"  batches: {batching['batches']} for "
                f"{batching['completed']} requests "
                f"(largest {batching['largest_batch']}, "
                f"{batching['size_cutoffs']} size-cut, "
                f"{batching['latency_cutoffs']} latency-cut)",
            ]
        ),
    )

    assert batching["largest_batch"] > 1, "concurrency never formed a batch"
    assert warm_ms < 50, f"warm round-trip {warm_ms:.1f} ms >= 50 ms"
    assert speedup >= 2.0, (
        f"micro-batched throughput only {speedup:.2f}x serial "
        f"({concurrent_rps:.1f} vs {serial_rps:.1f} req/s)"
    )


def test_warm_cache_round_trip_fast_path(emit_artifact):
    """CI fast path: daemon up, one cold + five warm requests, < 50 ms.

    A subset of the full bench (no load generation) so the smoke job
    can gate the latency claim in seconds, not minutes.
    """
    source = CorpusGenerator(seed=99).generate("acc", 1, languages=("c",))[0].source
    server, thread = _start_server(cache=PipelineCache())
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(host=host, port=port, timeout=60)
        client.validate({"warmup.c": source})
        times = []
        for _ in range(5):
            t0 = time.perf_counter()
            response = client.validate({"warmup.c": source})
            times.append(time.perf_counter() - t0)
        warm_ms = min(times) * 1000
        assert response["summary"]["total"] == 1
    finally:
        _stop_server(server, thread)

    emit_artifact(
        "service_warm_latency",
        f"Warm /v1/validate round-trip: {warm_ms:5.1f} ms (gate: < 50 ms)",
    )
    assert warm_ms < 50, f"warm round-trip {warm_ms:.1f} ms >= 50 ms"
