"""Extension bench: the Fortran Part-Two protocol (paper future work)."""

from repro.compiler.driver import Compiler
from repro.runtime.executor import Executor


def test_fortran_extension(benchmark, exp, emit_artifact):
    result = exp.fortran_extension()
    emit_artifact("fortran_extension", result.text)

    pipeline1, _, llmj1, _ = result.reports
    assert pipeline1.total_count > 0
    assert llmj1.accuracy_for(5) is not None

    # benchmark: Fortran front-end compile + run cost
    source = """program bench
  implicit none
  integer :: i, n
  real(8) :: a(64), expected(64)
  integer :: err
  n = 64
  err = 0
  do i = 1, n
    a(i) = i * 1.0
    expected(i) = a(i) * 2.0
  end do
  !$acc parallel loop copy(a)
  do i = 1, n
    a(i) = a(i) * 2.0
  end do
  do i = 1, n
    if (abs(a(i) - expected(i)) > 1.0e-9) then
      err = err + 1
    end if
  end do
  if (err > 0) then
    stop 1
  end if
end program bench
"""
    compiler = Compiler(model="acc")
    executor = Executor()

    def compile_and_run():
        compiled = compiler.compile(source, "bench.f90")
        return executor.run(compiled)

    result_run = benchmark(compile_and_run)
    assert result_run.returncode == 0
