"""BENCH-OBS — the telemetry layer's overhead budget.

The tracing design claims the hot path stays cheap: with no tracer
installed every ``trace.span`` call is one module-attribute read and a
shared no-op handle, and metrics updates are a dict lookup plus a
locked add.  With a tracer installed, every request grows a span tree
(request → batch → scheduler → stages) that is allocated, clocked, and
buffered.

This bench drives the same warm-cache serving workload with tracing
off and tracing on and gates the ratio:

* traced throughput >= 0.9x untraced (i.e. <= ~10% overhead);
* the traced run really collected spans (no vacuous pass);
* machine-readable ``BENCH_obs.json`` lands in benchmarks/output/.

Phases alternate off/on inside each attempt and the best of three
attempts is kept, so a background scheduling hiccup cannot fail the
gate spuriously.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.cache.bundle import PipelineCache
from repro.corpus.generator import CorpusGenerator
from repro.obs import trace
from repro.service.client import ServiceClient
from repro.service.server import make_server

OUTPUT_DIR = Path(__file__).parent / "output"

SERVER_KNOBS = dict(
    max_batch_size=8,
    max_latency=0.002,
    queue_capacity=128,
    threads=2,
    judge_workers=2,
)

ATTEMPTS = 3
GATE_RATIO = 0.9


@pytest.fixture(scope="module")
def corpus():
    files = CorpusGenerator(seed=88).generate("acc", 16, languages=("c", "cpp"))
    return {f"obs_{i}_{t.name}": t.source for i, t in enumerate(files)}


def _serial_wall(client, sources) -> float:
    t0 = time.perf_counter()
    for name, source in sources.items():
        client.validate({name: source})
    return time.perf_counter() - t0


def test_tracing_overhead_within_budget(corpus, emit_artifact):
    server = make_server(port=0, cache=PipelineCache(), **SERVER_KNOBS)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    tracer = trace.Tracer()
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(host=host, port=port, timeout=60)
        _serial_wall(client, corpus)  # warm the cache once

        best = None
        for _ in range(ATTEMPTS):
            trace.uninstall()
            wall_off = _serial_wall(client, corpus)
            with trace.installed(tracer):
                wall_on = _serial_wall(client, corpus)
            ratio = wall_off / wall_on if wall_on > 0 else 1.0
            sample = {
                "rps_off": len(corpus) / wall_off,
                "rps_on": len(corpus) / wall_on,
                "ratio": ratio,
            }
            if best is None or sample["ratio"] > best["ratio"]:
                best = sample
            if best["ratio"] >= 1.0:
                break
    finally:
        trace.uninstall()
        server.service.drain(timeout=30.0)
        server.shutdown()
        server.server_close()
        thread.join(10.0)

    spans = tracer.spans
    assert spans, "traced phase collected no spans — the bench measured nothing"
    assert {"service.request", "service.batch"} <= {s.name for s in spans}

    payload = {
        "bench": "obs_overhead",
        "requests_per_phase": len(corpus),
        "attempts": ATTEMPTS,
        "rps_tracing_off": round(best["rps_off"], 2),
        "rps_tracing_on": round(best["rps_on"], 2),
        "throughput_ratio": round(best["ratio"], 4),
        "gate_ratio": GATE_RATIO,
        "spans_collected": len(spans),
    }
    from repro.core.atomicio import atomic_write_json

    atomic_write_json(OUTPUT_DIR / "BENCH_obs.json", payload, indent=2)
    emit_artifact(
        "obs_overhead",
        "\n".join(
            [
                "BENCH-OBS — tracing overhead on the warm serving path",
                f"  tracing off:  {payload['rps_tracing_off']:.1f} req/s",
                f"  tracing on:   {payload['rps_tracing_on']:.1f} req/s "
                f"({payload['spans_collected']} spans collected)",
                f"  ratio:        {payload['throughput_ratio']:.3f} "
                f"(gate >= {GATE_RATIO})",
            ]
        ),
    )

    assert best["ratio"] >= GATE_RATIO, (
        f"tracing costs too much: traced throughput is "
        f"{best['ratio']:.2f}x untraced (gate {GATE_RATIO}x); "
        f"{payload['rps_tracing_on']:.1f} vs {payload['rps_tracing_off']:.1f} req/s"
    )
