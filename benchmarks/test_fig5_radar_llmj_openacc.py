"""EXP-F5 — Figure 5: radar plot of all three LLMJs, OpenACC."""

from repro.metrics.radar import radar_series, render_ascii_radar


def test_fig5_radar_llmj_openacc(benchmark, exp, emit_artifact):
    figure = exp.fig5()
    emit_artifact("fig5", figure.text)

    by_label = {series.label: series.as_dict() for series in figure.series}
    direct = by_label["Direct LLMJ"]
    llmj1 = by_label["LLMJ 1"]
    llmj2 = by_label["LLMJ 2"]

    # paper: agent judges beat the direct judge on almost every category
    assert llmj1["model errors"] > direct["model errors"]
    assert llmj1["improper syntax"] > direct["improper syntax"]
    assert llmj2["no directives"] >= direct["no directives"]
    # valid-test recognition stays high for the agents
    assert llmj1["valid tests"] > 0.75

    direct_report = exp.part1_report("acc")
    run = exp.part2_run("acc")

    def build_figure():
        return render_ascii_radar(
            [
                radar_series(direct_report, include_valid_axis=True),
                radar_series(run.llmj1_report, include_valid_axis=True),
                radar_series(run.llmj2_report, include_valid_axis=True),
            ]
        )

    art = benchmark(build_figure)
    assert "valid tests" in art
