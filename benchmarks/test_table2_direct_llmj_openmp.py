"""EXP-T2 — Table II: direct (tool-less) LLMJ negative probing, OpenMP."""

from repro.judge.llmj import DirectLLMJ


def test_table2_direct_llmj_openmp(benchmark, exp, emit_artifact):
    result = exp.table2()
    paper = result.paper
    report = result.reports[0]

    lines = [result.text, "", "paper-vs-measured accuracy per issue:"]
    for issue in range(6):
        row = report.row_for(issue)
        if row is None:
            continue
        lines.append(
            f"  issue {issue}: paper {paper.accuracy(issue):5.0%}  "
            f"measured {row.accuracy:5.0%}"
        )
    emit_artifact("table2", "\n".join(lines))

    # the paper's striking OpenMP findings (paper cells: 4% and 39%)
    assert report.accuracy_for(3) < 0.35, "no-OpenMP detection is nearly impossible"
    assert report.accuracy_for(5) < 0.6, "valid OpenMP files are heavily second-guessed"

    judge = DirectLLMJ(exp.model, "omp")
    sample = list(exp.part1_population("omp"))[:8]

    def judge_sample():
        return [judge.judge(test).says_valid for test in sample]

    verdicts = benchmark(judge_sample)
    assert len(verdicts) == len(sample)
