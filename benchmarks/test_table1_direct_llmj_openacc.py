"""EXP-T1 — Table I: direct (tool-less) LLMJ negative probing, OpenACC.

Regenerates the per-issue accuracy table and benchmarks the per-file
cost of the direct judge (prompt build → generation → parse).
"""

from repro.judge.llmj import DirectLLMJ


def test_table1_direct_llmj_openacc(benchmark, exp, emit_artifact):
    result = exp.table1()
    paper = result.paper
    report = result.reports[0]

    lines = [result.text, "", "paper-vs-measured accuracy per issue:"]
    for issue in range(6):
        row = report.row_for(issue)
        if row is None:
            continue
        lines.append(
            f"  issue {issue}: paper {paper.accuracy(issue):5.0%}  "
            f"measured {row.accuracy:5.0%}"
        )
    emit_artifact("table1", "\n".join(lines))

    # shape assertions (the paper's qualitative findings)
    assert report.accuracy_for(3) > 0.5, "no-OpenACC detection should be easy"
    assert report.accuracy_for(1) < 0.5, "bracket errors should be hard without tools"
    assert report.accuracy_for(5) > 0.7, "valid files mostly pass"

    # benchmark: judging a fixed sample of files
    judge = DirectLLMJ(exp.model, "acc")
    sample = list(exp.part1_population("acc"))[:8]

    def judge_sample():
        return [judge.judge(test).says_valid for test in sample]

    verdicts = benchmark(judge_sample)
    assert len(verdicts) == len(sample)
