"""Extension bench: the automated generate → validate loop."""

from repro.generation import AutomatedSuiteBuilder


def test_automated_generation_loop(benchmark, emit_artifact):
    builder = AutomatedSuiteBuilder(flavor="acc", seed=77, candidates_per_feature=1)
    features = [
        "acc.parallel-loop", "acc.reduction.add", "acc.data.copy",
        "acc.atomic", "acc.update", "acc.enter-exit-data",
    ]
    report = builder.build(features)
    emit_artifact("generation_loop", report.render())

    assert report.candidates_total == len(features)
    assert 0.0 < report.yield_fraction <= 1.0
    # the pipeline must reject every compile-level defect
    compile_defects = sum(
        n for d, n in report.defects_seen.items()
        if d.value.startswith("compile")
    )
    assert report.rejected_by_stage.get("compile", 0) >= max(0, compile_defects - 1)

    small = ["acc.parallel-loop", "acc.reduction.add"]

    def build_small():
        b = AutomatedSuiteBuilder(flavor="acc", seed=78, candidates_per_feature=1)
        return b.build(small)

    result = benchmark(build_small)
    assert result.candidates_total == len(small)
