"""Shared benchmark fixtures.

A single tiny-scale :class:`Experiments` instance is shared by every
table/figure bench (building corpora and judging them once), and each
bench writes its regenerated artifact to ``benchmarks/output/`` so the
rows the paper reports can be inspected after a run.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated tables inline.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.experiments import ExperimentConfig, Experiments
from repro.probing.prober import NegativeProber

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def exp() -> Experiments:
    """Small-scale experiment harness shared across all benches.

    "small" (280/64 Part-Two files) keeps per-issue cells populated
    enough for the shape assertions; "tiny" is too sparse (single-file
    cells flip whole percentages).
    """
    return Experiments(ExperimentConfig(scale="small", seed=20240822, model_seed=99))


@pytest.fixture(scope="session")
def bench_population():
    """A probed OpenACC population for pipeline/judge micro-benches."""
    files = CorpusGenerator(seed=55).generate("acc", 24, languages=("c", "cpp"))
    return list(NegativeProber(seed=56).probe(TestSuite("bench", "acc", files)))


def emit(name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture(scope="session")
def emit_artifact():
    return emit
