"""EXP-SCALE — worker-process scaling of the validation daemon.

The micro-batcher (EXP-SERVE) buys batching efficiency, but every batch
still validates inside one CPython process: the GIL caps ``/v1/validate``
at one core no matter how well requests batch.  This bench drives the
same cold corpus through two otherwise-identical daemons —

* ``workers=0`` — the in-process executable spec;
* ``workers=4`` — micro-batches fanned over a pre-forked
  :class:`~repro.service.workers.WorkerPool`;

with 16 concurrent clients each.  Requests pin the tree-walking
``walk`` backend: per-file compute must dominate the pool's fixed
costs (forking, per-worker model build, pipe pickling) or the ratio
would measure overhead, not scaling.  Gates:

* **throughput**: >= 2x with ``workers=4`` on a 4+ core host (on
  smaller hosts the ratio is recorded in the artifact, not gated —
  there is nothing to scale onto);
* **byte identity, unconditional**: the pooled daemon's verdicts equal
  the in-process daemon's *and* a direct :class:`TestsuiteValidator`
  call, on every host;
* **pool health**: 4 workers configured and alive, zero restarts —
  scaling must not come from crash-respawn churn.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.core import TestsuiteValidator
from repro.corpus.generator import CorpusGenerator
from repro.service.client import ServiceClient
from repro.service.protocol import encode_verdict
from repro.service.server import make_server

#: identical for both arms so the comparison isolates the pool; the
#: small batch cutoff keeps many batches in flight for 4 dispatchers
SERVER_KNOBS = dict(
    max_batch_size=4,
    max_latency=0.01,
    queue_capacity=128,
    threads=2,
    judge_workers=2,
)

CLIENT_THREADS = 16


@pytest.fixture(scope="module")
def corpus() -> dict[str, str]:
    files = CorpusGenerator(seed=170).generate("acc", 32, languages=("c", "cpp"))
    return {f"scale_{i}_{t.name}": t.source for i, t in enumerate(files)}


def _drive(workers: int, sources: dict[str, str]) -> tuple[float, dict, dict]:
    """One cold daemon at ``workers``, hammered by CLIENT_THREADS clients."""
    server = make_server(port=0, workers=workers, **SERVER_KNOBS)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        work = list(sources.items())
        responses: dict[str, dict] = {}
        errors: list[Exception] = []
        lock = threading.Lock()
        index = [0]

        def client_loop():
            client = ServiceClient(host=host, port=port, timeout=120, max_retries=8)
            while True:
                with lock:
                    if index[0] >= len(work):
                        return
                    name, source = work[index[0]]
                    index[0] += 1
                try:
                    response = client.validate({name: source}, backend="walk")
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    responses[name] = response

        pool = [threading.Thread(target=client_loop) for _ in range(CLIENT_THREADS)]
        t0 = time.perf_counter()
        for worker in pool:
            worker.start()
        for worker in pool:
            worker.join(300.0)
        wall = time.perf_counter() - t0
        assert not errors, errors[:3]
        assert len(responses) == len(sources)
        stats = server.service.stats_snapshot()["service"]
    finally:
        server.service.drain(timeout=30.0)
        server.shutdown()
        server.server_close()
        thread.join(10.0)
    return wall, responses, stats


def test_worker_pool_scaling_and_identity(corpus, emit_artifact):
    wall0, responses0, stats0 = _drive(0, corpus)
    wall4, responses4, stats4 = _drive(4, corpus)
    rps0 = len(corpus) / wall0
    rps4 = len(corpus) / wall4
    speedup = rps4 / rps0
    cores = os.cpu_count() or 1
    gated = cores >= 4

    # -- byte identity, unconditional: pooled == in-process == direct --
    direct = TestsuiteValidator(
        flavor="acc", execution_backend="walk"
    ).validate_sources(corpus)
    for name in corpus:
        expected = [encode_verdict(direct.verdict_for(name))]
        assert responses0[name]["verdicts"] == expected, f"workers=0 drift: {name}"
        assert responses4[name]["verdicts"] == expected, f"workers=4 drift: {name}"

    # -- pool health: parallelism, not crash-respawn churn -------------
    workers = stats4["workers"]
    assert workers["configured"] == 4
    assert workers["alive"] == 4
    assert workers["restarts"] == 0
    assert workers["batches_dispatched"] >= len(corpus) / SERVER_KNOBS["max_batch_size"]
    assert stats0["workers"]["configured"] == 0

    emit_artifact(
        "service_scaling",
        "\n".join(
            [
                "Validation service: worker-process scaling (cold cache each):",
                f"  workers=0 : {len(corpus)} requests in {wall0:6.2f}s "
                f"= {rps0:6.1f} req/s",
                f"  workers=4 : {len(corpus)} requests in {wall4:6.2f}s "
                f"= {rps4:6.1f} req/s",
                f"  speedup   : {speedup:5.2f}x on {cores} core(s) "
                + ("(gate: >= 2x)" if gated else "(recorded only: < 4 cores)"),
                f"  pool      : {workers['batches_dispatched']} batches over "
                f"{workers['configured']} workers "
                f"({workers['restarts']} restarts)",
                "  byte-identity: workers=4 == workers=0 == direct validator",
            ]
        ),
    )

    if gated:
        assert speedup >= 2.0, (
            f"workers=4 throughput only {speedup:.2f}x workers=0 on "
            f"{cores} cores ({rps4:.1f} vs {rps0:.1f} req/s)"
        )
