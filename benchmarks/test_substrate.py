"""Micro-benchmarks of the substrate: compiler front-end, interpreter,
tokenizer — the per-file costs every experiment pays."""

from repro.compiler.driver import Compiler
from repro.llm.tokenizer import SimTokenizer
from repro.runtime.executor import Executor


def test_compile_cost(benchmark, acc_source=None):
    source = _vecadd_source()
    compiler = Compiler(model="acc")

    def compile_once():
        return compiler.compile(source, "bench.c")

    result = benchmark(compile_once)
    assert result.ok


def test_execute_cost(benchmark):
    source = _vecadd_source()
    compiled = Compiler(model="acc").compile(source, "bench.c")
    executor = Executor()

    def run_once():
        return executor.run(compiled)

    result = benchmark(run_once)
    assert result.returncode == 0


def test_tokenizer_cost(benchmark):
    tokenizer = SimTokenizer()
    text = _vecadd_source() * 4

    def count():
        return tokenizer.count(text)

    n = benchmark(count)
    assert n > 100


def _vecadd_source() -> str:
    return """#include <stdio.h>
#include <stdlib.h>
#include <openacc.h>
#define N 128

int main() {
    double a[N];
    double b[N];
    double expected[N];
    int err = 0;
    for (int i = 0; i < N; i++) {
        a[i] = (double)i;
        b[i] = 0.0;
        expected[i] = a[i] * 2.0;
    }
#pragma acc parallel loop copyin(a[0:N]) copyout(b[0:N])
    for (int i = 0; i < N; i++) {
        b[i] = a[i] * 2.0;
    }
    for (int i = 0; i < N; i++) {
        if (b[i] != expected[i]) {
            err = err + 1;
        }
    }
    if (err != 0) {
        printf("FAILED\\n");
        return 1;
    }
    printf("PASSED\\n");
    return 0;
}
"""
