"""EXP-T7 — Table VII: agent-based LLMJ per-issue results, OpenACC.

Benchmarks the agent judge (prompt with tool outputs) on pre-collected
tool reports, the paper's retroactive-analysis configuration.
"""

from repro.judge.agent import ToolRunner
from repro.judge.llmj import AgentLLMJ


def test_table7_agent_llmj_openacc(benchmark, exp, bench_population, emit_artifact):
    result = exp.table7()
    llmj1, llmj2 = result.reports
    paper = result.paper

    lines = [result.text, "", "paper-vs-measured (LLMJ 1 / LLMJ 2):"]
    for issue in range(6):
        r1, r2 = llmj1.row_for(issue), llmj2.row_for(issue)
        if r1 is None:
            continue
        lines.append(
            f"  issue {issue}: paper {paper['LLMJ 1'].accuracy(issue):4.0%}/"
            f"{paper['LLMJ 2'].accuracy(issue):4.0%}  measured "
            f"{r1.accuracy:4.0%}/{r2.accuracy:4.0%}"
        )
    emit_artifact("table7", "\n".join(lines))

    # shapes from the paper's discussion of Table VII
    assert llmj1.accuracy_for(3) >= 0.9  # no-OpenACC detection near-perfect
    assert llmj2.accuracy_for(3) >= 0.9
    assert llmj1.accuracy_for(4) < 0.5  # test-logic removal stays hard
    # LLMJ 1 recognizes valid tests at least as well as LLMJ 2 (paper: 92 vs 79)
    assert llmj1.accuracy_for(5) > llmj2.accuracy_for(5) - 0.03

    tools = ToolRunner("acc")
    sample = bench_population[:8]
    reports = [tools.collect(test) for test in sample]
    judge = AgentLLMJ(exp.model, "acc", kind="direct", tools=tools)

    def judge_sample():
        return [
            judge.judge(test, report).says_valid
            for test, report in zip(sample, reports)
        ]

    verdicts = benchmark(judge_sample)
    assert len(verdicts) == len(sample)
