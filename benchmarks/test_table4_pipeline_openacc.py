"""EXP-T4 — Table IV: validation pipeline per-issue results, OpenACC.

Benchmarks the record-all pipeline over a probed sample (compile +
execute + judge for every file).
"""

from repro.llm.model import DeepSeekCoderSim
from repro.pipeline.engine import PipelineConfig, ValidationPipeline


def test_table4_pipeline_openacc(benchmark, exp, bench_population, emit_artifact):
    result = exp.table4()
    p1, p2 = result.reports
    paper = result.paper

    lines = [result.text, "", "paper-vs-measured (Pipeline 1):"]
    for issue in range(6):
        row = p1.row_for(issue)
        if row is None:
            continue
        lines.append(
            f"  issue {issue}: paper {paper['Pipeline 1'].accuracy(issue):5.0%}  "
            f"measured {row.accuracy:5.0%}"
        )
    emit_artifact("table4", "\n".join(lines))

    # shapes: compiler-detectable mutations ~perfect, issue 4 weak
    for issue in (1, 2):
        assert p1.accuracy_for(issue) == 1.0
        assert p2.accuracy_for(issue) == 1.0
    assert p1.accuracy_for(4) < 0.6
    assert p1.accuracy_for(5) > 0.6

    sample = bench_population[:12]
    model = DeepSeekCoderSim(seed=1)
    pipeline = ValidationPipeline(
        PipelineConfig(flavor="acc", early_exit=False, judge_workers=2), model=model
    )

    def run_pipeline():
        return pipeline.run(sample)

    run = benchmark(run_pipeline)
    assert len(run.records) == len(sample)
