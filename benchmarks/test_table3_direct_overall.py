"""EXP-T3 — Table III: direct LLMJ overall accuracy and bias.

Benchmarks the vectorized metric computation over the full Part One
evaluation set.
"""

import numpy as np

from repro.metrics.accuracy import EvaluationSet, MetricsReport


def test_table3_direct_overall(benchmark, exp, emit_artifact):
    result = exp.table3()
    acc_report, omp_report = result.reports
    paper = result.paper

    lines = [
        result.text,
        "",
        f"OpenACC: paper acc {paper['acc'].overall_accuracy:.2%} bias {paper['acc'].bias:+.3f}"
        f" | measured acc {acc_report.overall_accuracy:.2%} bias {acc_report.bias:+.3f}",
        f"OpenMP:  paper acc {paper['omp'].overall_accuracy:.2%} bias {paper['omp'].bias:+.3f}"
        f" | measured acc {omp_report.overall_accuracy:.2%} bias {omp_report.bias:+.3f}",
    ]
    emit_artifact("table3", "\n".join(lines))

    # shape: OpenACC > OpenMP accuracy; strong positive ACC bias; ~0 OMP bias
    assert acc_report.overall_accuracy > omp_report.overall_accuracy
    assert acc_report.bias > 0.4
    assert abs(omp_report.bias) < 0.45

    # benchmark: metric computation on a paper-sized synthetic eval set
    rng = np.random.default_rng(0)
    issues = rng.integers(0, 6, size=1782)
    truth = issues == 5
    judged = truth ^ (rng.random(1782) < 0.25)
    evals = EvaluationSet(issues, truth, judged)

    def compute():
        return MetricsReport.from_evaluations("bench", evals)

    report = benchmark(compute)
    assert 0.0 <= report.overall_accuracy <= 1.0
