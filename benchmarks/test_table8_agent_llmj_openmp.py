"""EXP-T8 — Table VIII: agent-based LLMJ per-issue results, OpenMP."""

from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.judge.agent import ToolRunner
from repro.judge.llmj import AgentLLMJ
from repro.probing.prober import NegativeProber


def test_table8_agent_llmj_openmp(benchmark, exp, emit_artifact):
    result = exp.table8()
    llmj1, llmj2 = result.reports
    paper = result.paper

    lines = [result.text, "", "paper-vs-measured (LLMJ 1 / LLMJ 2):"]
    for issue in range(6):
        r1, r2 = llmj1.row_for(issue), llmj2.row_for(issue)
        if r1 is None:
            continue
        lines.append(
            f"  issue {issue}: paper {paper['LLMJ 1'].accuracy(issue):4.0%}/"
            f"{paper['LLMJ 2'].accuracy(issue):4.0%}  measured "
            f"{r1.accuracy:4.0%}/{r2.accuracy:4.0%}"
        )
    emit_artifact("table8", "\n".join(lines))

    # shapes: both excellent on valid files; LLMJ2 at least comparable
    # at spotting no-OpenMP files (only meaningful with a populated cell;
    # slack widens with sampling noise — a sparse cell swings 1/count
    # per file, so a fixed margin would flake on small populations)
    assert llmj1.accuracy_for(5) > 0.8
    assert llmj2.accuracy_for(5) > 0.8
    row3 = llmj2.row_for(3)
    if row3 is not None and row3.count >= 8:
        slack = 0.25 + row3.count ** -0.5
        assert llmj2.accuracy_for(3) >= llmj1.accuracy_for(3) - slack

    files = CorpusGenerator(seed=88).generate("omp", 12, languages=("c",))
    probed = list(NegativeProber(seed=89).probe(TestSuite("b", "omp", files)))
    tools = ToolRunner("omp")
    reports = [tools.collect(test) for test in probed]
    judge = AgentLLMJ(exp.model, "omp", kind="indirect", tools=tools)

    def judge_sample():
        return [
            judge.judge(test, report).says_valid
            for test, report in zip(probed, reports)
        ]

    verdicts = benchmark(judge_sample)
    assert len(verdicts) == len(probed)
