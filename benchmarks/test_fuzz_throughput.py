"""BENCH-FUZZ — campaign throughput, coverage growth, oracle health.

ISSUE-5 gates:

* scheduler-parallel campaign throughput >= 2x serial under the repo's
  simulated 33B service-rate convention (the triage pool is the
  modeled bottleneck, exactly like the early-exit ablation's
  ``simulated_seconds`` figures), with byte-identical outcomes proving
  the parallel run did the *same* work;
* monotone coverage growth over a bounded run, with actual new
  coverage discovered beyond the seeds;
* zero walk/closure divergence on anything grown from the shipped
  templates — any discrepancy fails the suite AND writes a replayable
  campaign manifest to ``benchmarks/output/`` for triage;
* a machine-readable ``BENCH_fuzz.json`` artifact (executions/sec,
  acceptance rate, coverage curve) so the perf trajectory is tracked
  across PRs.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path

from repro.fuzz.campaign import Campaign, CampaignConfig
from repro.fuzz.manifest import save_campaign

OUTPUT_DIR = Path(__file__).parent / "output"

#: CI gate: the pipelined scheduler's modeled critical path must beat
#: the serial cost model by at least this factor
MIN_MODEL_SPEEDUP = 2.0

BENCH_CONFIG = CampaignConfig(
    flavor="acc",
    seed=20240822,
    rounds=4,
    batch_size=16,
    seed_count=8,
    step_limit=300_000,
    workers=4,
    judge_workers=4,
    triage="all",  # every survivor pays the modeled LLM cost
)


def _fail_with_manifest(result, reason: str) -> None:
    out = OUTPUT_DIR / "fuzz_failure_campaign"
    save_campaign(result, out)
    raise AssertionError(
        f"{reason}; replay with: "
        f"python -m repro.cli fuzz replay {out / 'campaign.json'}"
    )


def test_campaign_parallel_vs_serial_and_coverage_growth(emit_artifact):
    t0 = time.perf_counter()
    parallel = Campaign(BENCH_CONFIG).run()
    parallel_wall = time.perf_counter() - t0

    serial = Campaign(replace(BENCH_CONFIG, workers=1, judge_workers=1)).run()

    # identical work: worker counts must never change the outcome
    if parallel.digest() != serial.digest():
        _fail_with_manifest(parallel, "parallel and serial campaigns diverged")

    # differential oracle: the shipped templates and everything grown
    # from them must agree across backends
    if parallel.findings:
        _fail_with_manifest(
            parallel,
            f"{len(parallel.findings)} walk/closure discrepancies on the "
            "shipped corpus",
        )

    # coverage growth: monotone curve, and the rounds beat the seeds
    curve = parallel.stats.coverage_curve
    assert curve == sorted(curve), f"coverage curve not monotone: {curve}"
    assert curve[-1] > curve[0], f"no coverage growth over the run: {curve}"
    assert parallel.stats.accepted >= 1, "no new-coverage acceptance"

    # throughput: the scheduler's modeled critical path (triage charged
    # at the 33B service rate, CPU stages at measured busy seconds,
    # each divided by its pool width) vs the serial sum
    speedup = parallel.stats.model_speedup
    executions_per_second = (
        parallel.stats.executions / parallel_wall if parallel_wall > 0 else 0.0
    )

    payload = {
        "bench": "fuzz_campaign",
        "config": {
            "rounds": BENCH_CONFIG.rounds,
            "batch_size": BENCH_CONFIG.batch_size,
            "seed_count": BENCH_CONFIG.seed_count,
            "workers": BENCH_CONFIG.workers,
            "judge_workers": BENCH_CONFIG.judge_workers,
            "triage": BENCH_CONFIG.triage,
        },
        "executions": parallel.stats.executions,
        "executions_per_second": round(executions_per_second, 2),
        "wall_seconds": round(parallel_wall, 3),
        "acceptance_rate": round(parallel.stats.acceptance_rate, 4),
        "accepted": parallel.stats.accepted,
        "corpus_size": len(parallel.corpus),
        "coverage_curve": curve,
        "frontier_keys": curve[-1],
        "discrepancies": len(parallel.findings),
        "triage_flags": len(parallel.triage_flags),
        "serial_wall_model": round(parallel.stats.serial_wall_model, 3),
        "parallel_wall_model": round(parallel.stats.parallel_wall_model, 3),
        "model_speedup": round(speedup, 3),
        "digest": parallel.digest(),
    }
    from repro.core.atomicio import atomic_write_json

    atomic_write_json(OUTPUT_DIR / "BENCH_fuzz.json", payload, indent=2)
    emit_artifact(
        "fuzz_campaign",
        "\n".join(
            [
                "BENCH-FUZZ — coverage-guided differential campaign "
                f"({BENCH_CONFIG.rounds} rounds x {BENCH_CONFIG.batch_size})",
                f"  executions:      {payload['executions']} "
                f"({payload['executions_per_second']:.1f}/s real wall)",
                f"  acceptance:      {payload['accepted']} accepted "
                f"({payload['acceptance_rate']:.0%} of applied)",
                f"  coverage curve:  {curve}",
                f"  discrepancies:   {payload['discrepancies']}",
                f"  model walls:     serial {payload['serial_wall_model']}s, "
                f"parallel {payload['parallel_wall_model']}s "
                f"-> {speedup:.2f}x (gate >= {MIN_MODEL_SPEEDUP}x)",
            ]
        ),
    )

    assert speedup >= MIN_MODEL_SPEEDUP, (
        f"scheduler-parallel campaign only {speedup:.2f}x the serial cost "
        f"model (need >= {MIN_MODEL_SPEEDUP}x)"
    )


def test_fuzz_smoke_bounded_campaign():
    """The CI fuzz-smoke gate: a small bounded campaign must discover
    at least one new-coverage acceptance and zero discrepancies."""
    config = CampaignConfig(
        flavor="acc", seed=7, rounds=2, batch_size=8, seed_count=5,
        workers=2, judge_workers=2, triage="divergent",
    )
    result = Campaign(config).run()
    if result.findings:
        _fail_with_manifest(result, "fuzz-smoke found backend discrepancies")
    assert result.stats.accepted >= 1
    curve = result.stats.coverage_curve
    assert curve == sorted(curve) and curve[-1] > curve[0]
