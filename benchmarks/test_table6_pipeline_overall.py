"""EXP-T6 — Table VI: overall validation-pipeline accuracy and bias."""

from repro.metrics.accuracy import EvaluationSet, MetricsReport

import numpy as np


def test_table6_pipeline_overall(benchmark, exp, emit_artifact):
    result = exp.table6()
    acc_p1, acc_p2, omp_p1, omp_p2 = result.reports
    paper = result.paper

    lines = [result.text, ""]
    for flavor, measured in (("acc", (acc_p1, acc_p2)), ("omp", (omp_p1, omp_p2))):
        for published, report in zip(paper[flavor], measured):
            lines.append(
                f"{flavor} {published.label}: paper acc {published.overall_accuracy:.2%} "
                f"bias {published.bias:+.3f} | measured acc "
                f"{report.overall_accuracy:.2%} bias {report.bias:+.3f}"
            )
    emit_artifact("table6", "\n".join(lines))

    # shapes: pipelines more accurate on OpenMP than OpenACC; restrictive bias
    assert omp_p1.overall_accuracy > acc_p1.overall_accuracy
    assert acc_p1.bias <= 0.1
    assert acc_p2.bias <= 0.1

    def recompute_overall():
        rng = np.random.default_rng(1)
        issues = rng.integers(0, 6, size=2078)
        truth = issues == 5
        judged = truth ^ (rng.random(2078) < 0.2)
        return MetricsReport.from_evaluations(
            "bench", EvaluationSet(issues, truth, judged)
        )

    benchmark(recompute_overall)
