"""EXP-F6 — Figure 6: radar plot of all three LLMJs, OpenMP."""

from repro.metrics.radar import radar_series, render_ascii_radar


def test_fig6_radar_llmj_openmp(benchmark, exp, emit_artifact):
    figure = exp.fig6()
    emit_artifact("fig6", figure.text)

    by_label = {series.label: series.as_dict() for series in figure.series}
    direct = by_label["Direct LLMJ"]
    llmj1 = by_label["LLMJ 1"]
    llmj2 = by_label["LLMJ 2"]

    # paper: agents transform no-OpenMP detection (4% -> 65/85%);
    # meaningful only when the issue-3 cell is populated
    run = exp.part2_run("omp")
    row3 = run.llmj1_report.row_for(3)
    if row3 is not None and row3.count >= 8:
        assert llmj1["no directives"] > direct["no directives"]
        assert llmj2["no directives"] > direct["no directives"] - 0.15
    # and valid-test recognition (39% -> 93/96%)
    assert llmj1["valid tests"] > direct["valid tests"]
    assert llmj2["valid tests"] > direct["valid tests"]

    direct_report = exp.part1_report("omp")
    run = exp.part2_run("omp")

    def build_figure():
        return render_ascii_radar(
            [
                radar_series(direct_report, include_valid_axis=True),
                radar_series(run.llmj1_report, include_valid_axis=True),
                radar_series(run.llmj2_report, include_valid_axis=True),
            ]
        )

    benchmark(build_figure)
