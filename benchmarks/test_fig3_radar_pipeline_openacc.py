"""EXP-F3 — Figure 3: radar plot, pipeline accuracy by category, OpenACC."""

from repro.metrics.radar import radar_series, render_ascii_radar


def test_fig3_radar_pipeline_openacc(benchmark, exp, emit_artifact):
    figure = exp.fig3()
    emit_artifact("fig3", figure.text)

    by_label = {series.label: series.as_dict() for series in figure.series}
    p1 = by_label["Pipeline 1"]
    # the figure's defining shape: three axes pinned high, test logic low
    assert p1["improper syntax"] == 1.0
    assert p1["no directives"] >= 0.9
    assert p1["test logic"] < 0.6

    # paper-vs-measured per axis
    for label, series in by_label.items():
        published = figure.paper[label]
        for axis, value in series.items():
            # shape tolerance: winners and order preserved, not exact cells
            assert abs(value - published[axis]) < 0.45, (label, axis)

    run = exp.part2_run("acc")

    def build_figure():
        series = [
            radar_series(run.pipeline1_report),
            radar_series(run.pipeline2_report),
        ]
        return render_ascii_radar(series)

    art = benchmark(build_figure)
    assert "test logic" in art
