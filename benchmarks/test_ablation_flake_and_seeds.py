"""Ablation benches: flake-rate sweep and seed variance (DESIGN.md §7)."""

from repro.experiments.ablations import flake_rate_sweep, seed_variance


def test_flake_rate_sweep(benchmark, bench_population, emit_artifact):
    points = flake_rate_sweep(bench_population, rates=(0.0, 0.07, 0.14, 0.28))
    lines = ["Toolchain-flake sweep (valid-file accuracy, OpenACC):",
             "  rate   pipeline   judge    gap"]
    for p in points:
        lines.append(
            f"  {p.flake_rate:4.0%}   {p.pipeline_valid_accuracy:7.1%}  "
            f"{p.judge_valid_accuracy:6.1%}  {p.gap:+6.1%}"
        )
    emit_artifact("ablation_flake", "\n".join(lines))

    # the mechanism behind the paper's Table IV vs VII gap
    assert points[-1].gap >= points[0].gap - 0.05

    sample = bench_population[:10]

    def sweep_small():
        return flake_rate_sweep(sample, rates=(0.0, 0.2))

    benchmark(sweep_small)


def test_seed_variance(benchmark, bench_population, emit_artifact):
    result = seed_variance(bench_population, seeds=(1, 2, 3))
    emit_artifact(
        "ablation_seeds",
        "\n".join(
            [
                "Judge-seed variance of pipeline accuracy (OpenACC):",
                f"  seeds:     {result.seeds}",
                f"  accuracy:  {[f'{a:.1%}' for a in result.accuracies]}",
                f"  mean/std:  {result.accuracy_mean:.1%} / {result.accuracy_std:.1%}",
                f"  bias mean: {result.bias_mean:+.3f}",
            ]
        ),
    )
    assert result.accuracy_std < 0.2

    sample = bench_population[:8]

    def replicate():
        return seed_variance(sample, seeds=(1, 2))

    benchmark(replicate)
