"""EXP-T5 — Table V: validation pipeline per-issue results, OpenMP."""

from repro.corpus.generator import CorpusGenerator
from repro.corpus.suite import TestSuite
from repro.llm.model import DeepSeekCoderSim
from repro.pipeline.engine import PipelineConfig, ValidationPipeline
from repro.probing.prober import NegativeProber


def test_table5_pipeline_openmp(benchmark, exp, emit_artifact):
    result = exp.table5()
    p1, p2 = result.reports
    paper = result.paper

    lines = [result.text, "", "paper-vs-measured (Pipeline 2):"]
    for issue in range(6):
        row = p2.row_for(issue)
        if row is None:
            continue
        lines.append(
            f"  issue {issue}: paper {paper['Pipeline 2'].accuracy(issue):5.0%}  "
            f"measured {row.accuracy:5.0%}"
        )
    emit_artifact("table5", "\n".join(lines))

    # shape: OpenMP pipelines are accurate overall, valid files mostly pass
    assert p1.accuracy_for(5) > 0.75
    assert p2.accuracy_for(5) > 0.75
    for issue in (1, 2):
        assert p1.accuracy_for(issue) == 1.0

    files = CorpusGenerator(seed=77).generate("omp", 16, languages=("c",))
    probed = list(NegativeProber(seed=78).probe(TestSuite("b", "omp", files)))
    pipeline = ValidationPipeline(
        PipelineConfig(flavor="omp", early_exit=False), model=DeepSeekCoderSim(seed=2)
    )

    def run_pipeline():
        return pipeline.run(probed)

    run = benchmark(run_pipeline)
    assert len(run.records) == len(probed)
