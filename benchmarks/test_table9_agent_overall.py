"""EXP-T9 — Table IX: overall agent-based LLMJ accuracy and bias."""

from repro.judge.prompts import agent_direct_prompt
from repro.llm.model import DeepSeekCoderSim


def test_table9_agent_overall(benchmark, exp, emit_artifact):
    result = exp.table9()
    acc_l1, acc_l2, omp_l1, omp_l2 = result.reports
    paper = result.paper

    lines = [result.text, ""]
    for flavor, measured in (("acc", (acc_l1, acc_l2)), ("omp", (omp_l1, omp_l2))):
        for published, report in zip(paper[flavor], measured):
            lines.append(
                f"{flavor} {published.label}: paper acc {published.overall_accuracy:.2%} "
                f"bias {published.bias:+.3f} | measured acc "
                f"{report.overall_accuracy:.2%} bias {report.bias:+.3f}"
            )
    emit_artifact("table9", "\n".join(lines))

    # shapes: agent judges land ~70-90% overall with permissive LLMJ1 bias
    for report in (acc_l1, acc_l2, omp_l1, omp_l2):
        assert 0.6 < report.overall_accuracy < 0.95
    assert acc_l1.bias > 0.1  # mistakes skew toward passing invalid files

    # benchmark: raw generation cost of one agent judgment
    model = DeepSeekCoderSim(seed=3)
    population = list(exp.part2_run("acc").population)
    prompt = agent_direct_prompt(
        population[0].source, "acc", 0, "", "", 0, "", "Test passed\n"
    )

    def generate_once():
        return model.generate(prompt)

    response = benchmark(generate_once)
    assert "FINAL" in response or "final" in response.lower()
