"""EXP-F4 — Figure 4: radar plot, pipeline accuracy by category, OpenMP."""

from repro.metrics.radar import radar_series, render_ascii_radar


def test_fig4_radar_pipeline_openmp(benchmark, exp, emit_artifact):
    figure = exp.fig4()
    emit_artifact("fig4", figure.text)

    by_label = {series.label: series.as_dict() for series in figure.series}
    p1, p2 = by_label["Pipeline 1"], by_label["Pipeline 2"]
    # paper: the two OpenMP pipelines are nearly identical on the axes
    # the compiler pins (the test-logic axis rests on a handful of files
    # at this scale, so its spread is sampling noise, not shape)
    for axis in ("model errors", "improper syntax", "no directives"):
        assert abs(p1[axis] - p2[axis]) < 0.40, axis
    assert p1["improper syntax"] == 1.0 and p2["improper syntax"] == 1.0
    # and OpenMP test-logic detection is far better than OpenACC's (fig 3);
    # only meaningful when the issue-4 cell is populated
    run = exp.part2_run("omp")
    issue4 = run.pipeline1_report.row_for(4)
    if issue4 is not None and issue4.count >= 5:
        acc_p1 = {s.label: s.as_dict() for s in exp.fig3().series}["Pipeline 1"]
        assert p1["test logic"] > acc_p1["test logic"]

    run = exp.part2_run("omp")

    def build_figure():
        return render_ascii_radar(
            [radar_series(run.pipeline1_report), radar_series(run.pipeline2_report)]
        )

    benchmark(build_figure)
