"""BENCH-INTERP — interpreter throughput: walk vs closure backend.

The execute stage bounds the validation pipeline's cold-cache floor
(up to 2M steps per program, per mutant, per experiment), so interpreter
steps/sec is the substrate's core performance number.  This module:

* benchmarks steps/sec per backend over three representative program
  shapes (loop-heavy, directive-heavy, fault path) so the perf
  trajectory is tracked from PR 2 on;
* asserts the closure backend is >= 2x the walk backend (a coarse CI
  guard with generous margin — locally the ratio is 5-10x);
* emits a BENCH artifact with the measured ratios.

Both backends must also produce byte-identical results here — the
equivalence suite proper lives in ``tests/test_backend_equivalence.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.compiler.driver import Compiler
from repro.runtime.executor import Executor

#: CI guard: closure must beat walk by at least this factor on the
#: loop-heavy workload (locally ~5-10x; margin absorbs CI noise)
MIN_CI_SPEEDUP = 2.0

LOOP_HEAVY = r"""
#include <stdio.h>
#define N 256
int main() {
    double a[N]; double b[N]; double c[N];
    double s = 0.0;
    for (int i = 0; i < N; i++) { a[i] = i * 0.5; b[i] = i + 1.0; }
    for (int rep = 0; rep < 40; rep++) {
        for (int i = 0; i < N; i++) { c[i] = a[i] * 2.0 + b[i] * 0.5; }
        for (int i = 0; i < N; i++) { s += c[i]; }
    }
    printf("s=%f\n", s);
    return 0;
}
"""

DIRECTIVE_HEAVY = r"""
#include <stdio.h>
#include <openacc.h>
#define N 64
int main() {
    double a[N]; double b[N];
    int err = 0;
    for (int i = 0; i < N; i++) { a[i] = i; b[i] = 0.0; }
    for (int rep = 0; rep < 60; rep++) {
        #pragma acc parallel loop copyin(a[0:N]) copyout(b[0:N])
        for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0 + rep; }
        #pragma acc parallel loop reduction(+:err)
        for (int i = 0; i < N; i++) {
            if (b[i] != a[i] * 2.0 + rep) err += 1;
        }
    }
    printf("err=%d\n", err);
    return err;
}
"""

FAULT_PATH = r"""
#include <stdio.h>
#include <stdlib.h>
#define N 128
int main() {
    double *p = (double *)malloc(N * sizeof(double));
    double s = 0.0;
    for (int rep = 0; rep < 40; rep++) {
        for (int i = 0; i < N; i++) { p[i] = i * 1.5; }
        for (int i = 0; i < N; i++) { s += p[i]; }
    }
    printf("s=%f\n", s);
    return p[N * 2] > 0.0;  /* out-of-bounds: simulated segfault */
}
"""

PROGRAMS = {
    "loop_heavy": LOOP_HEAVY,
    "directive_heavy": DIRECTIVE_HEAVY,
    "fault_path": FAULT_PATH,
}


@pytest.fixture(scope="module")
def compiled_programs():
    compiler = Compiler(model="acc")
    out = {}
    for name, source in PROGRAMS.items():
        compiled = compiler.compile(source, f"{name}.c")
        assert compiled.ok, compiled.stderr
        out[name] = compiled
    return out


def _time_run(executor: Executor, compiled, reps: int = 3):
    result = executor.run(compiled)  # warm-up (also pays one-time lowering)
    start = time.perf_counter()
    for _ in range(reps):
        result = executor.run(compiled)
    return result, (time.perf_counter() - start) / reps


@pytest.mark.parametrize("backend", ["walk", "closure"])
@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_interpreter_throughput(benchmark, compiled_programs, program, backend):
    """Steps/sec per backend per program shape (trajectory tracking)."""
    executor = Executor(step_limit=10_000_000, backend=backend)
    compiled = compiled_programs[program]
    executor.run(compiled)  # pay one-time lowering outside the timer

    result = benchmark(lambda: executor.run(compiled))
    assert result.steps > 10_000  # the bench must actually exercise the loop
    benchmark.extra_info["steps"] = result.steps
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["steps_per_sec"] = int(
            result.steps / benchmark.stats["mean"]
        )


def test_closure_backend_speedup(compiled_programs, emit_artifact):
    """The perf gate: closure >= 2x walk in CI (>= 5x locally), with
    byte-identical results on every measured program."""
    walk = Executor(step_limit=10_000_000, backend="walk")
    closure = Executor(step_limit=10_000_000, backend="closure")
    lines = ["Interpreter throughput, walk vs closure backend:"]
    ratios = {}
    for name, compiled in sorted(compiled_programs.items()):
        walk_result, walk_seconds = _time_run(walk, compiled)
        closure_result, closure_seconds = _time_run(closure, compiled)
        assert walk_result == closure_result, (
            f"{name}: backends disagree\n  walk:    {walk_result}\n"
            f"  closure: {closure_result}"
        )
        ratio = walk_seconds / closure_seconds if closure_seconds > 0 else float("inf")
        ratios[name] = ratio
        lines.append(
            f"  {name:16s} walk {walk_result.steps / walk_seconds / 1e6:6.2f} Msteps/s"
            f"   closure {closure_result.steps / closure_seconds / 1e6:6.2f} Msteps/s"
            f"   speedup {ratio:5.1f}x"
        )
    emit_artifact("interpreter_throughput", "\n".join(lines))

    assert ratios["loop_heavy"] >= MIN_CI_SPEEDUP, (
        f"closure backend only {ratios['loop_heavy']:.2f}x walk on the "
        f"loop-heavy workload (gate: {MIN_CI_SPEEDUP}x)"
    )
