"""BENCH-INTERP — interpreter throughput across all execution backends.

The execute stage bounds the validation pipeline's cold-cache floor
(up to 2M steps per program, per mutant, per experiment), so interpreter
steps/sec is the substrate's core performance number.  This module:

* benchmarks steps/sec per backend over four representative program
  shapes (scalar loop-heavy, array traversal, directive-heavy, fault
  path) so the perf trajectory is tracked from PR 2 on;
* asserts the closure backend is >= 2x walk and the codegen backend is
  >= 2x closure on the scalar loop-heavy kernel (coarse CI guards with
  generous margin — locally closure/walk is 5-10x);
* emits a text artifact plus machine-readable
  ``benchmarks/output/BENCH_interpreter.json`` with steps/sec per
  backend and the pairwise ratios.

The array-traversal kernel is reported but not gated: element loads and
stores go through the semantics helpers shared by closure and codegen
alike, so the codegen/closure ratio there is structurally lower than on
scalar arithmetic (observed ~1.9x vs ~2.4x).

All backends must also produce byte-identical results here — the
equivalence suite proper lives in ``tests/test_backend_equivalence.py``.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.compiler.driver import Compiler
from repro.runtime.executor import Executor
from repro.runtime.interpreter import EXECUTION_BACKENDS

#: CI guard: closure must beat walk by at least this factor on the
#: loop-heavy workload (locally ~5-10x; margin absorbs CI noise)
MIN_CI_SPEEDUP = 2.0

#: CI guard: codegen must beat closure by at least this factor on the
#: scalar loop-heavy workload (locally ~2.4x)
MIN_CODEGEN_SPEEDUP = 2.0

#: The gated kernel: scalar arithmetic in a hot loop.  Every operation
#: is slot reads/writes plus folded-literal arithmetic — the shape the
#: codegen backend's batched ticks and static fast paths target.
LOOP_HEAVY = r"""
#include <stdio.h>
int main() {
    double s = 0.0;
    double t = 1.0;
    int k = 0;
    for (int rep = 0; rep < 300; rep++) {
        for (int i = 0; i < 64; i++) {
            t = t * 1.000001 + 0.5;
            s += t * 2.0 - i * 0.25;
            k = k + 1;
        }
    }
    printf("s=%f k=%d\n", s, k);
    return 0;
}
"""

#: Reported but not gated: element access pays the shared
#: _load_element/_store_* helpers in both fast backends.
ARRAY_TRAVERSAL = r"""
#include <stdio.h>
#define N 256
int main() {
    double a[N]; double b[N]; double c[N];
    double s = 0.0;
    for (int i = 0; i < N; i++) { a[i] = i * 0.5; b[i] = i + 1.0; }
    for (int rep = 0; rep < 40; rep++) {
        for (int i = 0; i < N; i++) { c[i] = a[i] * 2.0 + b[i] * 0.5; }
        for (int i = 0; i < N; i++) { s += c[i]; }
    }
    printf("s=%f\n", s);
    return 0;
}
"""

DIRECTIVE_HEAVY = r"""
#include <stdio.h>
#include <openacc.h>
#define N 64
int main() {
    double a[N]; double b[N];
    int err = 0;
    for (int i = 0; i < N; i++) { a[i] = i; b[i] = 0.0; }
    for (int rep = 0; rep < 60; rep++) {
        #pragma acc parallel loop copyin(a[0:N]) copyout(b[0:N])
        for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0 + rep; }
        #pragma acc parallel loop reduction(+:err)
        for (int i = 0; i < N; i++) {
            if (b[i] != a[i] * 2.0 + rep) err += 1;
        }
    }
    printf("err=%d\n", err);
    return err;
}
"""

FAULT_PATH = r"""
#include <stdio.h>
#include <stdlib.h>
#define N 128
int main() {
    double *p = (double *)malloc(N * sizeof(double));
    double s = 0.0;
    for (int rep = 0; rep < 40; rep++) {
        for (int i = 0; i < N; i++) { p[i] = i * 1.5; }
        for (int i = 0; i < N; i++) { s += p[i]; }
    }
    printf("s=%f\n", s);
    return p[N * 2] > 0.0;  /* out-of-bounds: simulated segfault */
}
"""

PROGRAMS = {
    "loop_heavy": LOOP_HEAVY,
    "array_traversal": ARRAY_TRAVERSAL,
    "directive_heavy": DIRECTIVE_HEAVY,
    "fault_path": FAULT_PATH,
}


@pytest.fixture(scope="module")
def compiled_programs():
    compiler = Compiler(model="acc")
    out = {}
    for name, source in PROGRAMS.items():
        compiled = compiler.compile(source, f"{name}.c")
        assert compiled.ok, compiled.stderr
        out[name] = compiled
    return out


def _time_run(executor: Executor, compiled, reps: int = 5):
    """Best-of-``reps`` wall time (after a warm-up run that also pays
    the backend's one-time lowering/translation cost)."""
    result = executor.run(compiled)
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = executor.run(compiled)
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.mark.parametrize("backend", EXECUTION_BACKENDS)
@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_interpreter_throughput(benchmark, compiled_programs, program, backend):
    """Steps/sec per backend per program shape (trajectory tracking)."""
    executor = Executor(step_limit=10_000_000, backend=backend)
    compiled = compiled_programs[program]
    executor.run(compiled)  # pay one-time lowering outside the timer

    result = benchmark(lambda: executor.run(compiled))
    assert result.steps > 10_000  # the bench must actually exercise the loop
    benchmark.extra_info["steps"] = result.steps
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["steps_per_sec"] = int(
            result.steps / benchmark.stats["mean"]
        )


def test_backend_speedups(compiled_programs, emit_artifact):
    """The perf gate: closure >= 2x walk and codegen >= 2x closure on
    the scalar loop-heavy kernel, with byte-identical results across
    every backend on every measured program.  Also writes the
    machine-readable BENCH_interpreter.json artifact."""
    executors = {b: Executor(step_limit=10_000_000, backend=b)
                 for b in EXECUTION_BACKENDS}
    lines = ["Interpreter throughput across execution backends:"]
    matrix = {}
    for name, compiled in sorted(compiled_programs.items()):
        timings = {}
        results = {}
        for backend in EXECUTION_BACKENDS:
            results[backend], timings[backend] = _time_run(executors[backend], compiled)
        walk = results["walk"]
        for backend in EXECUTION_BACKENDS:
            assert results[backend] == walk, (
                f"{name}: backends disagree\n  walk:    {walk}\n"
                f"  {backend}: {results[backend]}"
            )
        per_backend = {
            backend: {
                "seconds": timings[backend],
                "steps_per_sec": int(walk.steps / timings[backend]),
            }
            for backend in EXECUTION_BACKENDS
        }
        ratios = {
            "closure_vs_walk": timings["walk"] / timings["closure"],
            "codegen_vs_walk": timings["walk"] / timings["codegen"],
            "codegen_vs_closure": timings["closure"] / timings["codegen"],
        }
        matrix[name] = {"steps": walk.steps, "backends": per_backend, "ratios": ratios}
        cells = "   ".join(
            f"{b} {walk.steps / timings[b] / 1e6:6.2f} Msteps/s"
            for b in EXECUTION_BACKENDS
        )
        lines.append(
            f"  {name:16s} {cells}   closure/walk {ratios['closure_vs_walk']:4.1f}x"
            f"   codegen/closure {ratios['codegen_vs_closure']:4.2f}x"
        )
    emit_artifact("interpreter_throughput", "\n".join(lines))

    gates = {
        "closure_vs_walk_loop_heavy": {
            "minimum": MIN_CI_SPEEDUP,
            "measured": matrix["loop_heavy"]["ratios"]["closure_vs_walk"],
        },
        "codegen_vs_closure_loop_heavy": {
            "minimum": MIN_CODEGEN_SPEEDUP,
            "measured": matrix["loop_heavy"]["ratios"]["codegen_vs_closure"],
        },
    }
    payload = {
        "bench": "interpreter_throughput",
        "step_limit": 10_000_000,
        "backends": list(EXECUTION_BACKENDS),
        "programs": matrix,
        "gates": gates,
    }
    from repro.core.atomicio import atomic_write_json

    output_dir = Path(__file__).parent / "output"
    atomic_write_json(
        output_dir / "BENCH_interpreter.json", payload, indent=2, sort_keys=True
    )

    for gate, spec in gates.items():
        assert spec["measured"] >= spec["minimum"], (
            f"perf gate {gate}: measured {spec['measured']:.2f}x "
            f"< required {spec['minimum']}x"
        )
