"""EXP-SHARD — process sharding of the experiment matrix.

The multi-table sweep (every table and figure) decomposes into four
independent (part × flavor) cells; `repro.experiments.sharding` fans
them over worker processes that share execute/judge results through a
lock-protected on-disk cache.  This bench asserts the two properties
the layer promises:

* **determinism** — the sharded sweep's tables and figures are
  byte-identical to the sequential runner's, always;
* **speedup** — ≥ 2x wall-clock on the sweep when the host has ≥ 4
  CPUs (the four cells genuinely overlap).  Hosts with 2-3 CPUs gate a
  conservative ≥ 1.2x; single-CPU hosts can't overlap processes at
  all, so only determinism is gated there (the artifact still records
  the measured ratio).

Timing is one-shot (cold sequential vs cold sharded), so this times
explicitly rather than using the repeating ``benchmark`` fixture.
"""

import os
import time

from repro.experiments import ExperimentConfig, Experiments


def _sweep(jobs: int):
    exp = Experiments(ExperimentConfig(scale="tiny", jobs=jobs))
    t0 = time.perf_counter()
    tables = [t.text for t in exp.all_tables()]
    figures = [f.text for f in exp.all_figures()]
    return tables, figures, time.perf_counter() - t0, exp


def test_sharded_sweep_identical_and_faster(emit_artifact):
    cpus = os.cpu_count() or 1
    jobs = min(4, cpus) if cpus > 1 else 2
    target = 2.0 if cpus >= 4 else (1.2 if cpus >= 2 else 0.0)

    seq_tables, seq_figures, seq_seconds, _ = _sweep(jobs=1)
    shard_tables, shard_figures, shard_seconds, exp = _sweep(jobs=jobs)
    if target and seq_seconds / shard_seconds < target:
        # one retry, keeping the faster sharded run: a noisy neighbor
        # on a shared CI host shouldn't fail a structural property
        _, _, retry_seconds, _ = _sweep(jobs=jobs)
        shard_seconds = min(shard_seconds, retry_seconds)

    speedup = seq_seconds / shard_seconds if shard_seconds > 0 else float("inf")
    gate = "2.0x" if cpus >= 4 else ("1.2x" if cpus >= 2 else "none (1 CPU)")
    emit_artifact(
        "experiment_sharding",
        "\n".join(
            [
                "Process-sharded multi-table sweep (tiny scale, 9 tables + 4 figures):",
                f"  host CPUs:            {cpus}",
                f"  worker processes:     {jobs}",
                f"  sequential sweep:     {seq_seconds:7.2f} s",
                f"  sharded sweep:        {shard_seconds:7.2f} s",
                f"  speedup:              {speedup:7.2f}x",
                f"  speedup gate:         {gate}",
                f"  byte-identical:       {shard_tables == seq_tables and shard_figures == seq_figures}",
            ]
        ),
    )

    # determinism gates unconditionally
    assert shard_tables == seq_tables
    assert shard_figures == seq_figures

    # per-shard stats made it back and were aggregated
    stats = exp.shard_stats
    assert stats is not None
    assert stats.files_total > 0
    assert stats.judge.processed > 0

    # the speedup gate needs real CPUs to overlap processes on
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"sharded sweep only {speedup:.2f}x faster on {cpus} CPUs "
            f"(sequential {seq_seconds:.2f}s, sharded {shard_seconds:.2f}s)"
        )
    elif cpus >= 2:
        assert speedup >= 1.2, (
            f"sharded sweep only {speedup:.2f}x faster on {cpus} CPUs "
            f"(sequential {seq_seconds:.2f}s, sharded {shard_seconds:.2f}s)"
        )


def test_targeted_artifact_shards_only_needed_cells():
    """`--jobs` on a single artifact must not compute the whole matrix."""
    exp = Experiments(ExperimentConfig(scale="tiny", jobs=2))
    exp.prefetch(artifacts=["table4"])
    assert set(exp._part2_runs) == {"acc:part2"}
    assert not exp._part1_reports

    sequential = Experiments(ExperimentConfig(scale="tiny")).table4().text
    assert exp.table4().text == sequential
